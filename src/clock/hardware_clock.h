// Per-node hardware clock with drift, offset and NTP-style disciplining.
//
// Section 4.3 of the paper schedules distributed checkpoints by local clock
// ("checkpoint at time t"), so the precision of the coordinated suspend is
// bounded by the residual clock synchronization error. Emulab runs NTP over
// its dedicated control LAN, which the paper quotes at ~200 us worst-case
// error. This model reproduces that error process: each node's oscillator
// drifts (ppm), an NTP loop periodically measures the offset against the true
// (simulator) time with sampling jitter, and slews a correction. The residual
// error — what the checkpoint scheduler actually experiences — is an emergent
// property of drift, poll interval, jitter and loop gain.

#ifndef TCSIM_SRC_CLOCK_HARDWARE_CLOCK_H_
#define TCSIM_SRC_CLOCK_HARDWARE_CLOCK_H_

#include <functional>
#include <string>

#include "src/sim/checkpointable.h"
#include "src/sim/event_queue.h"
#include "src/sim/invariants.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace tcsim {

// Tunables for one node's clock and its NTP discipline loop.
struct ClockParams {
  // Frequency error of the free-running oscillator, in parts per million.
  // Typical PC quartz is within +/-50 ppm.
  double drift_ppm = 10.0;

  // Initial phase error relative to true time.
  SimTime initial_offset = 0;

  // Additional per-clock random initial phase error, sampled uniformly in
  // [-jitter, +jitter] at construction. Models machines booting with
  // differently-wrong CMOS clocks before NTP converges.
  SimTime initial_offset_jitter = 0;

  // Standard deviation of a single NTP offset measurement. On a quiet
  // dedicated control LAN this is dominated by interrupt/stack jitter;
  // ~50-100 us reproduces the paper's ~200 us worst-case error.
  SimTime ntp_jitter = 45 * kMicrosecond;

  // NTP poll interval.
  SimTime ntp_poll_interval = 4 * kSecond;

  // Fraction of the measured offset corrected per poll.
  double ntp_gain = 0.7;
};

// A disciplined per-node clock. LocalNow() is what gettimeofday-style reads
// on the node's *host* (hypervisor) return; guest virtual time is layered on
// top of this by the Xen model.
class HardwareClock : public Checkpointable {
 public:
  HardwareClock(Simulator* sim, Rng rng, ClockParams params);

  HardwareClock(const HardwareClock&) = delete;
  HardwareClock& operator=(const HardwareClock&) = delete;

  // Local time corresponding to the current simulated physical time.
  SimTime LocalNow() const { return LocalAt(sim_->Now()); }

  // Local time corresponding to physical time `phys`.
  SimTime LocalAt(SimTime phys) const;

  // Physical time at which this clock will read `local`. Inverse of LocalAt.
  SimTime PhysicalAt(SimTime local) const;

  // Signed error of this clock versus true time, local - physical.
  SimTime CurrentError() const { return LocalNow() - sim_->Now(); }

  // Schedules `fn` to run when this clock reads `local_time` — the primitive
  // used for "checkpoint at time t" scheduling.
  EventHandle ScheduleAtLocal(SimTime local_time, std::function<void()> fn);

  // Starts the periodic NTP discipline loop. Idempotent.
  void StartNtp();

  // Stops the discipline loop; the clock free-runs (and drifts) afterwards.
  void StopNtp();

  // Registers the local-time monotonicity audit under `name`: successive
  // LocalNow() reads must never go backwards, even across NTP slews and
  // checkpoint rebases.
  void RegisterInvariants(InvariantRegistry* reg, const std::string& name);

  // Error samples (in microseconds) recorded at each NTP poll, for
  // convergence analysis.
  const Samples& error_history() const { return error_history_; }

  const ClockParams& params() const { return params_; }

  // Checkpointable: the discipline state (offset, drift, slew, rebase anchor)
  // and the NTP rng round-trip; the poll event is re-armed at its saved
  // absolute deadline on restore.
  std::string checkpoint_id() const override { return "clock"; }
  void SaveState(ArchiveWriter* w) const override;
  void RestoreState(ArchiveReader& r) override;
  uint64_t state_version() const override { return version_.value(); }

 private:
  void NtpPoll();

  // Folds drift accumulated so far into offset_ and re-anchors ref_ at now;
  // keeps LocalAt piecewise-linear and the inverse exact.
  void Rebase();

  Simulator* sim_;
  Rng rng_;
  ClockParams params_;
  double drift_ = 0.0;      // fractional frequency error (ppm * 1e-6)
  double slew_rate_ = 0.0;  // NTP correction rate, applied like extra drift
  SimTime offset_ = 0;      // phase error at ref_
  SimTime ref_ = 0;         // physical time of last rebase
  bool ntp_running_ = false;
  SimTime ntp_next_poll_ = 0;  // absolute physical time of the pending poll
  EventHandle ntp_event_;
  Samples error_history_;
  StateVersion version_;
};

}  // namespace tcsim

#endif  // TCSIM_SRC_CLOCK_HARDWARE_CLOCK_H_
