// Transparent failover: restore a crashed partition from its last committed
// micro-checkpoint and splice it back into the running system.

#ifndef TCSIM_SRC_HA_FAILOVER_H_
#define TCSIM_SRC_HA_FAILOVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/ha/output_buffer.h"
#include "src/net/topology.h"
#include "src/obs/metrics.h"
#include "src/sim/time.h"

namespace tcsim {
namespace ha {

// One committed epoch's restore tier: the serialized per-partition images
// retained in memory by the MicroCheckpointer. Epoch 0 is the bootstrap
// capture at t = 0, so a restore target always exists.
struct CommittedEpoch {
  uint64_t epoch = 0;  // 0 = bootstrap; k = barrier at k * period
  SimTime at = 0;
  bool durable = false;  // the epoch's repo batch committed (true if no repo)
  std::vector<std::shared_ptr<const std::vector<uint8_t>>> images;
};

// What one recovery did, for tests and the failover bench.
struct RecoveryRecord {
  uint32_t partition = 0;
  SimTime killed_at = 0;
  SimTime restored_to = 0;
  uint64_t epoch = 0;   // restore target
  bool ok = false;      // image parsed and every component restored
  double wall_ms = 0.0; // discard + reset + restore + replay, wall clock
  size_t discarded = 0; // victim's unreleased held output dropped
  size_t replayed = 0;  // released inbound deliveries re-injected
};

// Executes the kill/restore/replay protocol (DESIGN.md §14):
//  1. discard the victim's unreleased buffered output (its replay will
//     regenerate exactly those sends),
//  2. wipe the victim's event queue and move its clock to the restore point
//     (Simulator::ResetForRestore),
//  3. restore every component from the committed image — components re-arm
//     their pending events DMTCP-style as they restore,
//  4. re-inject the released inbound deliveries the wipe lost,
//  5. let the conservative scheduler run the victim forward; it catches up
//     to the survivors by the next epoch barrier.
// Runs on the coordinator thread at a quiescent point; survivors are never
// touched.
class FailoverManager {
 public:
  FailoverManager(GeneratedTopology* topo, OutputCommitBuffer* buffer);

  // Kills `victim` at `now` (every partition quiesced at `now`) and restores
  // it from `target`. `buffer` may be null only in setups with no
  // cross-partition traffic.
  RecoveryRecord KillAndRestore(uint32_t victim, SimTime now,
                                const CommittedEpoch& target);

  const std::vector<RecoveryRecord>& recoveries() const { return recoveries_; }

 private:
  GeneratedTopology* topo_;
  OutputCommitBuffer* buffer_;
  std::vector<RecoveryRecord> recoveries_;
  obs::Counter* failovers_counter_;
  obs::Histogram* recovery_ms_;
  obs::Histogram* rollback_us_;
};

}  // namespace ha
}  // namespace tcsim

#endif  // TCSIM_SRC_HA_FAILOVER_H_
