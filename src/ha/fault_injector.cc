#include "src/ha/fault_injector.h"

#include <algorithm>

namespace tcsim {
namespace ha {

void FaultInjector::Schedule(const FaultEvent& ev) {
  // Insert behind every already-scheduled fault with the same instant so
  // insertion order breaks ties — stable and deterministic.
  auto it = std::upper_bound(
      schedule_.begin() + delivered_, schedule_.end(), ev,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  schedule_.insert(it, ev);
}

void FaultInjector::GenerateKillSchedule(uint32_t partitions, uint32_t count,
                                         SimTime horizon) {
  for (uint32_t i = 0; i < count; ++i) {
    FaultEvent ev;
    const SimTime lo = horizon / 4;
    ev.at = lo + static_cast<SimTime>(rng_.NextUint64() %
                                      static_cast<uint64_t>(horizon - lo));
    ev.kind = FaultKind::kKillPartition;
    ev.target = static_cast<uint32_t>(rng_.NextUint64() % partitions);
    Schedule(ev);
  }
}

SimTime FaultInjector::NextFaultAt() const {
  return delivered_ < schedule_.size() ? schedule_[delivered_].at
                                       : kNoPendingEvent;
}

std::vector<FaultEvent> FaultInjector::TakeDue(SimTime now) {
  std::vector<FaultEvent> due;
  while (delivered_ < schedule_.size() && schedule_[delivered_].at <= now) {
    due.push_back(schedule_[delivered_]);
    ++delivered_;
  }
  return due;
}

uint64_t FaultInjector::ScheduleDigest() const {
  Fnv1aDigest d;
  d.Mix(seed_);
  for (const FaultEvent& ev : schedule_) {
    d.Mix(static_cast<uint64_t>(ev.at));
    d.Mix(static_cast<uint64_t>(ev.kind));
    d.Mix(ev.target);
    d.Mix(ev.budget);
    d.Mix(static_cast<uint64_t>(ev.duration));
    d.Mix(static_cast<uint64_t>(ev.loss * 1e6));
  }
  return d.value();
}

}  // namespace ha
}  // namespace tcsim
