#include "src/ha/output_buffer.h"

#include <algorithm>
#include <cassert>

#include "src/obs/epoch_ledger.h"

#include "src/sim/simulator.h"

namespace tcsim {
namespace ha {

OutputCommitBuffer::OutputCommitBuffer(GeneratedTopology* topo) : topo_(topo) {
  held_.resize(topo->partition_count());
  emit_pos_.assign(topo->partition_count(), 0);
  released_floor_.assign(topo->partition_count(), 0);
  shard_stats_.resize(topo->partition_count());
  epoch_seq_[0] = emit_pos_;  // the bootstrap capture's watermark
  for (size_t i = 0; i < topo->interior_wire_count(); ++i) {
    Wire* w = topo->interior_wire(i);
    if (w->is_cross_partition()) {
      w->SetEgressTap(this);
    }
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  held_packets_counter_ = reg.FindCounter("ha.buffer.held_packets");
  held_bytes_counter_ = reg.FindCounter("ha.buffer.held_bytes");
  released_counter_ = reg.FindCounter("ha.buffer.released_packets");
  discarded_counter_ = reg.FindCounter("ha.buffer.discarded_packets");
  replayed_counter_ = reg.FindCounter("ha.buffer.replayed_packets");
  suppressed_counter_ = reg.FindCounter("ha.buffer.suppressed_packets");
  hold_time_us_ = reg.FindHistogram("ha.buffer.hold_time_us");
}

OutputCommitBuffer::~OutputCommitBuffer() {
  for (size_t i = 0; i < topo_->interior_wire_count(); ++i) {
    Wire* w = topo_->interior_wire(i);
    if (w->is_cross_partition()) {
      w->SetEgressTap(nullptr);
    }
  }
}

bool OutputCommitBuffer::OnCrossEgress(Wire* wire, const Packet& pkt,
                                       SimTime deliver_at,
                                       uint32_t src_partition,
                                       uint32_t dst_partition) {
  const uint64_t pos = emit_pos_[src_partition]++;
  ShardStats& stats = shard_stats_[src_partition];
  if (pos < released_floor_[src_partition]) {
    // A replaying victim re-emitting output that already escaped: the
    // original of this emission was released before the kill (it postdated
    // the restored capture — e.g. a forward of a delivery injected at the
    // restore barrier itself — so replay regenerates it), and deterministic
    // replay makes this copy byte-identical. It must not escape twice.
    ++stats.suppressed;
    return true;
  }
  Held h;
  h.send_time = topo_->partition_sim(src_partition)->Now();
  h.deliver_at = deliver_at;
  h.src_partition = src_partition;
  h.dst_partition = dst_partition;
  h.seq = pos;
  h.pkt = pkt;
  h.sink = wire->sink();
  held_[src_partition].push_back(std::move(h));
  ++stats.held_packets;
  stats.held_bytes += pkt.size_bytes;
  return true;
}

void OutputCommitBuffer::FlushShardTelemetry() {
  for (ShardStats& s : shard_stats_) {
    held_packets_counter_->Add(s.held_packets);
    held_bytes_counter_->Add(s.held_bytes);
    suppressed_counter_->Add(s.suppressed);
    suppressed_total_ += s.suppressed;
    s = ShardStats{};
  }
}

size_t OutputCommitBuffer::ReleaseUpTo(SimTime cutoff, SimTime barrier) {
  obs::EpochLedger& ledger = obs::EpochLedger::Global();
  const bool lg = ledger.enabled();
  const double l0 = lg ? ledger.NowMs() : 0.0;
  FlushShardTelemetry();
  // Send times within one shard are monotone (a partition's clock never runs
  // backward within a timeline, and after a restore the shard was already
  // truncated to the restore point), so the releasable set is a prefix.
  std::vector<Held> batch;
  for (size_t p = 0; p < held_.size(); ++p) {
    auto& shard = held_[p];
    while (!shard.empty() && shard.front().send_time <= cutoff) {
      released_floor_[p] = shard.front().seq + 1;
      batch.push_back(std::move(shard.front()));
      shard.pop_front();
    }
  }
  // Total deterministic order, independent of which shard produced what
  // first: arrival instant, then source partition, then source sequence.
  std::sort(batch.begin(), batch.end(), [](const Held& a, const Held& b) {
    if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
    if (a.src_partition != b.src_partition)
      return a.src_partition < b.src_partition;
    return a.seq < b.seq;
  });
  double hold_us_max = 0.0;
  double hold_us_sum = 0.0;
  for (Held& h : batch) {
    const SimTime inject_at = std::max(h.deliver_at, barrier);
    PacketHandler* sink = h.sink;
    const Packet pkt = h.pkt;
    topo_->partition_sim(h.dst_partition)
        ->ScheduleAt(inject_at, [sink, pkt] { sink->HandlePacket(pkt); });
    if (observer_ != nullptr) {
      observer_->Observe(pkt, inject_at, h.src_partition, h.dst_partition);
    }
    const double hold_us = static_cast<double>(inject_at - h.send_time) /
                           static_cast<double>(kMicrosecond);
    hold_us_sum += hold_us;
    if (hold_us > hold_us_max) {
      hold_us_max = hold_us;
    }
    hold_time_us_->Observe(hold_us);
    Released rec;
    rec.inject_at = inject_at;
    rec.release_barrier = barrier;
    rec.dst_partition = h.dst_partition;
    rec.pkt = std::move(h.pkt);
    rec.sink = sink;
    released_.push_back(std::move(rec));
  }
  released_total_ += batch.size();
  released_counter_->Add(batch.size());
  if (lg) {
    // Simulated hold times ride along as args: the analyzer's output-hold
    // percentiles come from these per-release samples.
    ledger.StampHere(
        -1, "output_release", l0, ledger.NowMs(), "epoch_commit",
        {{"released", static_cast<double>(batch.size())},
         {"hold_max_us", hold_us_max},
         {"hold_mean_us",
          batch.empty() ? 0.0 : hold_us_sum / static_cast<double>(batch.size())}});
  }
  return batch.size();
}

void OutputCommitBuffer::MarkEpoch(uint64_t epoch) {
  FlushShardTelemetry();
  epoch_seq_[epoch] = emit_pos_;
  // Only the newest committed epoch (and, early on, the bootstrap) is ever a
  // restore target; anything two epochs stale is dead.
  while (!epoch_seq_.empty() && epoch_seq_.begin()->first + 2 < epoch) {
    epoch_seq_.erase(epoch_seq_.begin());
  }
}

size_t OutputCommitBuffer::DiscardUnreleasedFrom(uint32_t victim,
                                                 uint64_t epoch) {
  const auto it = epoch_seq_.find(epoch);
  assert(it != epoch_seq_.end() && "restore target epoch was never marked");
  const uint64_t watermark = it->second[victim];
  auto& shard = held_[victim];
  size_t discarded = 0;
  // Emission positions within a shard are monotone, so the post-capture
  // entries are a suffix.
  while (!shard.empty() && shard.back().seq >= watermark) {
    shard.pop_back();
    ++discarded;
  }
  // Replay restarts the victim's emission stream at the capture point;
  // re-emissions reclaim their original positions so the released floor can
  // identify (and suppress) the ones whose originals already escaped.
  emit_pos_[victim] = watermark;
  discarded_total_ += discarded;
  discarded_counter_->Add(discarded);
  return discarded;
}

size_t OutputCommitBuffer::ReplayInbound(uint32_t victim, SimTime restored_to) {
  Simulator* sim = topo_->partition_sim(victim);
  assert(sim->Now() == restored_to && "reset the victim before replaying");
  size_t replayed = 0;
  // Released entries are re-injected in their original release order; an
  // entry whose delivery fired before the restore-point capture (inject_at
  // earlier than the barrier, or at an earlier barrier's injection that the
  // epoch's RunUntil consumed) is already part of the image and skipped.
  for (const Released& rec : released_) {
    if (rec.dst_partition != victim) {
      continue;
    }
    if (rec.inject_at <= restored_to && rec.release_barrier < restored_to) {
      continue;  // consumed before the restored image was captured
    }
    PacketHandler* sink = rec.sink;
    const Packet pkt = rec.pkt;
    sim->ScheduleAt(rec.inject_at, [sink, pkt] { sink->HandlePacket(pkt); });
    ++replayed;
  }
  replayed_total_ += replayed;
  replayed_counter_->Add(replayed);
  return replayed;
}

void OutputCommitBuffer::PruneReplayLog(SimTime floor) {
  while (!released_.empty()) {
    const Released& rec = released_.front();
    // Mirror of the ReplayInbound skip rule: an entry no restore at or after
    // `floor` can need is dead.
    if (rec.inject_at <= floor && rec.release_barrier < floor) {
      released_.pop_front();
    } else {
      break;
    }
  }
}

size_t OutputCommitBuffer::held_count() const {
  size_t n = 0;
  for (const auto& shard : held_) {
    n += shard.size();
  }
  return n;
}

uint64_t OutputCommitBuffer::held_bytes() const {
  uint64_t n = 0;
  for (const auto& shard : held_) {
    for (const Held& h : shard) {
      n += h.pkt.size_bytes;
    }
  }
  return n;
}

}  // namespace ha
}  // namespace tcsim
