// Deterministic seeded fault schedules for the HA subsystem.
//
// A fault schedule is data, not behaviour: a sorted list of (instant, kind,
// target) entries, either laid out explicitly by a test or generated from a
// seed. The MicroCheckpointer's driver loop stops the scheduler at each
// fault's instant and dispatches it — so faults land at quiescent points
// mid-epoch (every partition's clock equal, no worker running), which is
// what makes a faulty run bit-reproducible: same seed, same schedule, same
// digests, run after run.

#ifndef TCSIM_SRC_HA_FAULT_INJECTOR_H_
#define TCSIM_SRC_HA_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/sim/digest.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace tcsim {
namespace ha {

enum class FaultKind : uint8_t {
  kKillPartition = 0,  // crash a partition; failover restores it
  kKillNode = 1,       // crash one host — resolves to its partition (the
                       // restore unit is the per-partition image; DESIGN.md
                       // §14 documents the blast radius)
  kTornRepoWrite = 2,  // arm a byte-budget tear on the repo write path
  kLinkFlap = 3,       // an interior wire drops traffic for a while
};

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kKillPartition;
  uint32_t target = 0;   // partition id / node index / interior wire index;
                         // kTornRepoWrite: 0 = segment, 1 = journal
  uint64_t budget = 0;   // kTornRepoWrite: bytes admitted before the tear
  SimTime duration = 0;  // kLinkFlap: how long the fault holds
  double loss = 1.0;     // kLinkFlap: loss rate while faulted
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed), rng_(seed) {}

  // Appends an explicit fault. Schedule instants need not be sorted; the
  // injector orders them.
  void Schedule(const FaultEvent& ev);

  // Generates `count` seeded partition kills, uniformly over partitions and
  // over (horizon/4, horizon) — late enough that epochs exist to restore
  // from, spread enough to land in different epoch phases.
  void GenerateKillSchedule(uint32_t partitions, uint32_t count,
                            SimTime horizon);

  // Instant of the next undelivered fault, or kNoPendingEvent.
  SimTime NextFaultAt() const;

  // Removes and returns every fault with at <= now, in schedule order.
  std::vector<FaultEvent> TakeDue(SimTime now);

  // FNV-1a fold of the full schedule (delivered and pending), in order —
  // the determinism oracle: same seed, same digest.
  uint64_t ScheduleDigest() const;

  const std::vector<FaultEvent>& schedule() const { return schedule_; }
  size_t delivered() const { return delivered_; }

 private:
  uint64_t seed_;
  Rng rng_;
  std::vector<FaultEvent> schedule_;  // sorted by (at, insertion order)
  size_t delivered_ = 0;              // prefix of schedule_ already taken
};

}  // namespace ha
}  // namespace tcsim

#endif  // TCSIM_SRC_HA_FAULT_INJECTOR_H_
