// Output commit for the HA subsystem (the Remus / qemu-MC discipline).
//
// A micro-checkpointed system may lose everything after its last committed
// epoch, so output that has escaped to the outside world must never depend on
// uncommitted state: external output is *buffered* until the epoch covering
// it is committed, then released. Here the "outside world" boundary is
// cross-partition (zone-boundary) wire egress — which is also the Emulab
// external-observer boundary (src/emulab/external_observer.h).
//
// The buffer installs itself as the WireEgressTap of every cross-partition
// wire and holds each packet with the send-side clock reading and its
// logical position in the source's emission stream. Release is a
// deterministic function of epochs only: at an epoch barrier B with
// committed-epoch cutoff T_c, every held packet with send_time <= T_c is
// released, its delivery injected at max(deliver_at, T_B). Nothing about
// release depends on wall-clock commit timing, so a faulty run and a
// fault-free run release identical packet sequences at identical instants —
// the property the transparency tests diff. Released deliveries are ordered
// by (deliver_at, source partition, emission position).
//
// Emission positions are what make failover exactly-once. A restore rewinds
// the victim's position counter to the target epoch's watermark, so the
// deterministic replay re-emits the victim's post-capture output under the
// original positions. Positions still below the shard's released floor have
// already escaped (released before the kill — possible because deliveries
// injected at a barrier fire after that barrier's capture, so output they
// trigger postdates the restorable image yet is releasable one epoch later);
// those re-emissions are suppressed at the tap. Positions at or above the
// floor were still held at the kill, were discarded then, and are re-held
// exactly once.
//
// The released log doubles as the failover replay log: a restored partition
// lost every released delivery still pending in its event queue (the queue
// is wiped, and raw injected closures are not component state), so
// ReplayInbound re-injects the released entries the restored timeline still
// needs. DiscardUnreleasedFrom drops a victim's held output — its replay
// regenerates exactly those sends, which is what makes duplication
// impossible: output escapes the buffer only once, after commit.
//
// Threading: OnCrossEgress runs on whichever worker thread drives the source
// partition, so held state is sharded per source partition (single-writer,
// like the scheduler's outboxes); everything else runs on the coordinator
// thread between windows, synchronized by the scheduler's phase barriers.

#ifndef TCSIM_SRC_HA_OUTPUT_BUFFER_H_
#define TCSIM_SRC_HA_OUTPUT_BUFFER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/emulab/external_observer.h"
#include "src/net/packet.h"
#include "src/net/topology.h"
#include "src/net/wire.h"
#include "src/obs/metrics.h"
#include "src/sim/time.h"

namespace tcsim {
namespace ha {

class OutputCommitBuffer : public WireEgressTap {
 public:
  // Installs this buffer as the egress tap of every cross-partition interior
  // wire of `topo`. Does not own `topo`; the buffer must outlive the taps
  // (detached in the destructor).
  explicit OutputCommitBuffer(GeneratedTopology* topo);
  ~OutputCommitBuffer() override;

  OutputCommitBuffer(const OutputCommitBuffer&) = delete;
  OutputCommitBuffer& operator=(const OutputCommitBuffer&) = delete;

  // Released packets are also reported to `obs` (the facility-side view of
  // the experiment). Not owned; null detaches.
  void SetObserver(emulab::ExternalObserver* obs) { observer_ = obs; }

  // WireEgressTap: holds the packet. Always returns true — while the buffer
  // is installed, no cross-partition packet escapes before commit. Each
  // emission takes the shard's next logical stream position as its sequence;
  // a position below the shard's released floor is a replaying victim
  // re-emitting output that already escaped (e.g. re-forwarding a re-injected
  // delivery whose original forward was released before the kill), and is
  // dropped instead of held — output escapes exactly once.
  bool OnCrossEgress(Wire* wire, const Packet& pkt, SimTime deliver_at,
                     uint32_t src_partition, uint32_t dst_partition) override;

  // Releases every held packet with send_time <= `cutoff` (the committed
  // epoch's instant), injecting each delivery into its destination partition
  // at max(deliver_at, barrier). Deliveries are injected in (deliver_at,
  // src partition, seq) order. Coordinator thread, between windows. Returns
  // the number released.
  size_t ReleaseUpTo(SimTime cutoff, SimTime barrier);

  // Epoch bookkeeping: records every shard's emission position as the
  // watermark of `epoch`. Called at the epoch's barrier, after the capture
  // and before the system resumes, so the watermark splits each shard's
  // emission stream exactly at the capture instant: emissions below it
  // happened before the image was taken, emissions at or above it after.
  void MarkEpoch(uint64_t epoch);

  // Failover: drops the victim's held output emitted after `epoch`'s
  // capture — the victim's replay re-emits exactly those sends — and rewinds
  // the victim's emission position to the epoch's watermark, so replayed
  // emissions reclaim their original stream positions (which is what lets
  // OnCrossEgress recognise and suppress re-emissions of already-released
  // output). The split is the emission watermark, not a timestamp: output
  // forwarded at the barrier instant by a released delivery carries the
  // barrier's own send time but postdates the capture. Entries below the
  // watermark stay held (their transmission is in the restored image and
  // will not re-execute; normally the release cutoff has already drained
  // them, so the kept set is non-empty only under durable-commit gating).
  // Returns the number discarded.
  size_t DiscardUnreleasedFrom(uint32_t victim, uint64_t epoch);

  // Failover: re-injects released deliveries destined for `victim` that the
  // restore wiped from its event queue — entries with inject_at strictly
  // after `restored_to`, plus entries released at the `restored_to` barrier
  // itself (those fired after the epoch capture, so their effect is not in
  // the image). Call with the victim's simulator already reset to
  // `restored_to`. Returns the number re-injected.
  size_t ReplayInbound(uint32_t victim, SimTime restored_to);

  // Drops released-log entries no future restore can need: any restore
  // targets an epoch at or after `floor` (the newest committed epoch), so
  // entries whose delivery effect is inside every such image are dead.
  void PruneReplayLog(SimTime floor);

  // Held packets not yet released.
  size_t held_count() const;
  uint64_t held_bytes() const;

  uint64_t released_total() const { return released_total_; }
  uint64_t discarded_total() const { return discarded_total_; }
  uint64_t replayed_total() const { return replayed_total_; }
  uint64_t suppressed_total() const { return suppressed_total_; }
  size_t replay_log_size() const { return released_.size(); }

 private:
  struct Held {
    SimTime send_time = 0;   // source partition clock at Transmit
    SimTime deliver_at = 0;  // arrival instant at the sink, pre-buffering
    uint32_t src_partition = 0;
    uint32_t dst_partition = 0;
    uint64_t seq = 0;  // logical emission position in the source's stream
    Packet pkt;
    PacketHandler* sink = nullptr;
  };

  struct Released {
    SimTime inject_at = 0;        // when the delivery was scheduled to fire
    SimTime release_barrier = 0;  // the barrier that released it
    uint32_t dst_partition = 0;
    Packet pkt;
    PacketHandler* sink = nullptr;
  };

  GeneratedTopology* topo_;
  emulab::ExternalObserver* observer_ = nullptr;
  // Sharded per source partition: index p is written only by the thread
  // running partition p (send times within one shard are monotone, so a
  // release takes a prefix).
  std::vector<std::deque<Held>> held_;
  // Per-shard logical emission position. Rewound to the restore epoch's
  // watermark on failover: a replaying victim re-emits its post-capture
  // output under the original positions, making "already escaped" a simple
  // position test against released_floor_.
  std::vector<uint64_t> emit_pos_;
  // Per-shard count of released emissions. Releases always take the
  // position-order prefix of a shard, so positions below the floor have
  // escaped to the outside world and must never escape again.
  std::vector<uint64_t> released_floor_;
  // Per-epoch emission watermarks (epoch -> emit_pos_ at its capture).
  // Restores only ever target the newest committed epoch (or the epoch-0
  // bootstrap early on), so old entries are pruned aggressively.
  std::map<uint64_t, std::vector<uint64_t>> epoch_seq_;
  std::deque<Released> released_;  // replay log, in release order
  uint64_t released_total_ = 0;
  uint64_t discarded_total_ = 0;
  uint64_t replayed_total_ = 0;
  uint64_t suppressed_total_ = 0;

  // Hot-path tallies, sharded like held_: OnCrossEgress runs on worker
  // threads concurrently, so it must never touch the shared obs counters
  // directly. FlushShardTelemetry() folds the deltas into the registry on the
  // coordinator thread at each barrier (workers are parked, the phase barrier
  // orders the accesses).
  struct alignas(64) ShardStats {
    uint64_t held_packets = 0;
    uint64_t held_bytes = 0;
    uint64_t suppressed = 0;
  };
  std::vector<ShardStats> shard_stats_;
  void FlushShardTelemetry();

  // Telemetry handles (hot-path cost: pointer chase + add; never serialized,
  // never perturbing).
  obs::Counter* held_packets_counter_;
  obs::Counter* held_bytes_counter_;
  obs::Counter* released_counter_;
  obs::Counter* discarded_counter_;
  obs::Counter* replayed_counter_;
  obs::Counter* suppressed_counter_;
  obs::Histogram* hold_time_us_;
};

}  // namespace ha
}  // namespace tcsim

#endif  // TCSIM_SRC_HA_OUTPUT_BUFFER_H_
