// Continuous micro-checkpointing over the partitioned kernel.
//
// The paper checkpoints an experiment on demand; high availability needs the
// same machinery running *continuously*: capture an epoch every few
// simulated milliseconds, commit it (in memory, and through the repository's
// group commit when one is attached), buffer externally visible output until
// its covering epoch has committed, and on a crash restore the victim from
// the newest committed image and replay it back into the schedule. This is
// the Remus / qemu-MC protocol transplanted onto the epoch coordinator.
//
// Epoch/commit/release cadence (DESIGN.md §14). Let P be the period and
// lag = min(max_in_flight_epochs, 1):
//   - lag 0: synchronous capture; epoch k is committed at its own barrier kP.
//   - lag 1: two-phase capture; epoch k's serialize/hash/spill overlaps the
//     next window and is joined at barrier (k+1)P — so at any barrier the
//     newest *committed* epoch is the previous one, and a kill inside window
//     (kP, (k+1)P] finds epoch k's commit possibly still in flight.
// Release at barrier kP covers held output with send_time <= (k - lag)P; a
// restore inside window (kP, (k+1)P] targets epoch k - lag. Both are
// functions of epoch arithmetic only — never of wall-clock commit timing —
// which is what makes a faulty and a fault-free run release identical output
// sequences (the transparency property the tests diff).
//
// The driver loop stops the system at every epoch barrier and at every
// scheduled fault instant. Faults therefore land at quiescent points, where
// kill/restore/replay touches only the victim while survivors' state sits
// untouched — and where a seeded schedule replays bit-identically.

#ifndef TCSIM_SRC_HA_MICRO_CHECKPOINTER_H_
#define TCSIM_SRC_HA_MICRO_CHECKPOINTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/checkpoint/epoch_coordinator.h"
#include "src/emulab/external_observer.h"
#include "src/ha/failover.h"
#include "src/ha/fault_injector.h"
#include "src/ha/output_buffer.h"
#include "src/net/topology.h"
#include "src/obs/metrics.h"
#include "src/repo/checkpoint_repo.h"
#include "src/sim/time.h"

namespace tcsim {
namespace ha {

struct MicroCheckpointPolicy {
  SimTime period = kMillisecond;  // micro-checkpoint cadence

  // 0: synchronous capture (commit visible at the epoch's own barrier).
  // >= 1: two-phase capture with the commit overlapping the next window
  // (the coordinator keeps at most one commit in flight).
  uint32_t max_in_flight_epochs = 1;

  // Hold cross-partition egress until the covering epoch commits. Required
  // for kill faults (release-on-commit is what makes replay duplication
  // impossible); turn off only for the sync-bypass digest oracle.
  bool buffer_output = true;

  // Gate release on the epoch's repository batch having committed (needs an
  // attached repository). Restore still uses the newest in-memory committed
  // epoch — the in-memory tier is the failover tier; durability only gates
  // what escapes to the outside world.
  bool require_durable_commit = false;
};

class MicroCheckpointer {
 public:
  // `topo` must outlive this object. Enables the topology's HA capture walk
  // and takes the epoch-0 bootstrap capture; construct before running.
  MicroCheckpointer(GeneratedTopology* topo, MicroCheckpointPolicy policy);
  ~MicroCheckpointer();

  MicroCheckpointer(const MicroCheckpointer&) = delete;
  MicroCheckpointer& operator=(const MicroCheckpointer&) = delete;

  // Spill every epoch through `repo`'s group commit (see
  // PartitionEpochCoordinator::AttachRepository). Null detaches.
  void AttachRepository(CheckpointRepo* repo);

  // Faults dispatched by the driver loop. Not owned; null detaches.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }

  // Facility-side observer of released output. Not owned; null detaches.
  void SetObserver(emulab::ExternalObserver* observer);

  // Advances the whole system to `t`, micro-checkpointing on the way and
  // dispatching due faults. Resumable. On return every partition's clock
  // reads t and any in-flight commit has joined.
  void RunUntil(SimTime t);

  const MicroCheckpointPolicy& policy() const { return policy_; }
  PartitionEpochCoordinator* coordinator() { return coordinator_.get(); }
  OutputCommitBuffer* output_buffer() { return buffer_.get(); }
  FailoverManager* failover() { return failover_.get(); }

  // Newest committed epoch (epoch 0 until the first commit lands).
  const CommittedEpoch& latest_committed() const { return latest_; }
  uint64_t epochs_committed() const { return latest_.epoch; }

 private:
  uint32_t lag() const { return policy_.max_in_flight_epochs > 0 ? 1 : 0; }
  // Barrier bookkeeping: harvest the newly committed epoch, advance the
  // release cutoff, release held output, prune the replay log.
  void OnBarrier(SimTime barrier);
  void DispatchFaults(SimTime now);

  GeneratedTopology* topo_;
  MicroCheckpointPolicy policy_;
  std::unique_ptr<PartitionEpochCoordinator> coordinator_;
  std::unique_ptr<OutputCommitBuffer> buffer_;  // null when buffering is off
  std::unique_ptr<FailoverManager> failover_;
  FaultInjector* faults_ = nullptr;
  CheckpointRepo* repo_ = nullptr;
  CommittedEpoch latest_;        // restore tier: newest committed epoch
  uint64_t durable_epoch_ = 0;   // newest epoch of the unbroken durable chain
  SimTime now_ = 0;
  obs::Counter* epochs_counter_;
};

}  // namespace ha
}  // namespace tcsim

#endif  // TCSIM_SRC_HA_MICRO_CHECKPOINTER_H_
