#include "src/ha/micro_checkpointer.h"

#include <algorithm>
#include <cassert>

#include "src/obs/epoch_ledger.h"
#include "src/obs/trace_session.h"
#include "src/repo/io_fault.h"

namespace tcsim {
namespace ha {

MicroCheckpointer::MicroCheckpointer(GeneratedTopology* topo,
                                     MicroCheckpointPolicy policy)
    : topo_(topo), policy_(policy) {
  topo_->EnableHaCapture();
  coordinator_ = std::make_unique<PartitionEpochCoordinator>(
      topo_->scheduler(), policy_.period,
      [topo](Partition* p) { return topo->CaptureHaPartitionImage(p->id()); });
  if (policy_.max_in_flight_epochs > 0) {
    coordinator_->EnableAsyncCapture([topo](Partition* p, StagedCapture* out) {
      topo->SnapshotHaPartition(p->id(), out);
    });
  }
  if (policy_.buffer_output) {
    buffer_ = std::make_unique<OutputCommitBuffer>(topo_);
  }
  failover_ = std::make_unique<FailoverManager>(topo_, buffer_.get());
  // Epoch-0 bootstrap: capture the initial state so a kill during the very
  // first window has a restore target.
  latest_.epoch = 0;
  latest_.at = 0;
  latest_.durable = true;
  latest_.images.resize(topo_->partition_count());
  for (size_t p = 0; p < topo_->partition_count(); ++p) {
    latest_.images[p] = std::make_shared<const std::vector<uint8_t>>(
        topo_->CaptureHaPartitionImage(static_cast<uint32_t>(p)));
  }
  epochs_counter_ = obs::MetricsRegistry::Global().FindCounter(
      "ha.epochs_committed");
}

MicroCheckpointer::~MicroCheckpointer() = default;

void MicroCheckpointer::AttachRepository(CheckpointRepo* repo) {
  repo_ = repo;
  coordinator_->AttachRepository(repo);
}

void MicroCheckpointer::SetObserver(emulab::ExternalObserver* observer) {
  if (buffer_ != nullptr) {
    buffer_->SetObserver(observer);
  }
}

void MicroCheckpointer::RunUntil(SimTime t) {
  while (now_ < t) {
    const SimTime next_barrier = coordinator_->next_epoch();
    const SimTime next_fault =
        faults_ != nullptr ? faults_->NextFaultAt() : kNoPendingEvent;
    if (next_fault <= t && next_fault < next_barrier) {
      // Stop the whole system at the fault's instant — a quiescent point
      // mid-window — and dispatch. The coordinator's cadence is untouched;
      // its next StepEpoch simply resumes from here. This advance bypasses
      // the coordinator, so the ledger stamp (and the thread binding the
      // failover path stamps under) happens here.
      obs::EpochLedger& ledger = obs::EpochLedger::Global();
      obs::EpochLedger::BindThread(obs::EpochLedger::kCoordinatorShard,
                                   coordinator_->epoch_index());
      const double w0 = ledger.NowMs();
      topo_->scheduler()->RunUntil(next_fault);
      ledger.StampHere(-1, "window", w0, ledger.NowMs(), "fault");
      now_ = next_fault;
      DispatchFaults(next_fault);
      continue;
    }
    if (next_barrier <= t) {
      coordinator_->StepEpoch(next_barrier);
      now_ = next_barrier;
      OnBarrier(next_barrier);
      // Faults scheduled exactly at a barrier dispatch after its commit
      // bookkeeping — "kill at the barrier" sees the barrier's own state.
      if (faults_ != nullptr && faults_->NextFaultAt() <= now_) {
        DispatchFaults(now_);
      }
      continue;
    }
    coordinator_->StepEpoch(t);  // runs to t and joins any in-flight commit
    now_ = t;
  }
  coordinator_->FinishCommits();
}

void MicroCheckpointer::OnBarrier(SimTime barrier) {
  // The commit bookkeeping below (watermark marking, publishing the
  // committed images — a full image-set copy at scale) is serial wall time
  // between windows; the ledger tiles it as "epoch_commit".
  obs::EpochLedger& ledger = obs::EpochLedger::Global();
  const bool lg = ledger.enabled();
  const double c0 = lg ? ledger.NowMs() : 0.0;
  const uint64_t k = static_cast<uint64_t>(barrier / policy_.period);
  if (buffer_ != nullptr) {
    // Epoch k's capture just happened at this barrier and nothing has run
    // since, so the shards' sequence counters are its discard watermark.
    buffer_->MarkEpoch(k);
  }
  const uint64_t committed = k > lag() ? k - lag() : 0;
  if (committed >= 1 && committed > latest_.epoch) {
    // The coordinator's join edge (inside StepEpoch's capture for async, or
    // the capture itself for sync) has published this epoch's images and its
    // history record.
    const auto& images = coordinator_->last_epoch_images();
    assert(images.size() == topo_->partition_count());
    const auto& rec = coordinator_->history()[committed - 1];
    latest_.epoch = committed;
    latest_.at = static_cast<SimTime>(committed) * policy_.period;
    latest_.durable = repo_ == nullptr || rec.spill_ok;
    latest_.images = images;
    if (latest_.durable && durable_epoch_ == committed - 1) {
      durable_epoch_ = committed;
    }
    epochs_counter_->Increment();
    obs::TraceSession& session = obs::TraceSession::Global();
    obs::SpanId span = session.BeginSpan("ha", "ha.epoch_commit", latest_.at);
    session.AddSpanArg(span, "epoch", static_cast<double>(committed));
    session.AddSpanArg(span, "bytes", static_cast<double>(rec.image_bytes));
    session.AddSpanArg(span, "durable", latest_.durable ? 1.0 : 0.0);
    session.EndSpan(span, barrier);
  }
  if (lg) {
    ledger.StampHere(-1, "epoch_commit", c0, ledger.NowMs(), "publish",
                     {{"epoch", static_cast<double>(latest_.epoch)}});
  }
  if (buffer_ != nullptr) {
    const uint64_t cutoff_epoch =
        policy_.require_durable_commit ? durable_epoch_ : latest_.epoch;
    buffer_->ReleaseUpTo(static_cast<SimTime>(cutoff_epoch) * policy_.period,
                         barrier);
    // ReleaseUpTo stamps itself ("output_release"); the prune that trims the
    // replay log behind the committed epoch is charged separately.
    const double p0 = lg ? ledger.NowMs() : 0.0;
    buffer_->PruneReplayLog(latest_.at);
    if (lg) {
      ledger.StampHere(-1, "epoch_commit", p0, ledger.NowMs(), "prune");
    }
  }
}

void MicroCheckpointer::DispatchFaults(SimTime now) {
  for (const FaultEvent& ev : faults_->TakeDue(now)) {
    switch (ev.kind) {
      case FaultKind::kKillPartition:
      case FaultKind::kKillNode: {
        const uint32_t victim =
            ev.kind == FaultKind::kKillNode
                ? topo_->node_partition(ev.target % topo_->node_count())
                : ev.target % static_cast<uint32_t>(topo_->partition_count());
        assert((buffer_ != nullptr || topo_->partition_count() == 1) &&
               "kill faults need output buffering to replay safely");
        failover_->KillAndRestore(victim, now, latest_);
        break;
      }
      case FaultKind::kTornRepoWrite: {
        RepoIoFaultPlan plan;
        plan.allow_bytes = ev.budget;
        RepoIoFaultInjector::Arm(ev.target == 0 ? RepoIoTarget::kSegment
                                                : RepoIoTarget::kJournal,
                                 plan);
        break;
      }
      case FaultKind::kLinkFlap: {
        if (topo_->interior_wire_count() > 0) {
          Wire* w = topo_->interior_wire(ev.target %
                                         topo_->interior_wire_count());
          w->InjectLinkFault(now + ev.duration, ev.loss);
        }
        break;
      }
    }
  }
}

}  // namespace ha
}  // namespace tcsim
