#include "src/ha/failover.h"

#include <cassert>
#include <chrono>

#include "src/obs/epoch_ledger.h"
#include "src/obs/trace_session.h"
#include "src/sim/simulator.h"

namespace tcsim {
namespace ha {

FailoverManager::FailoverManager(GeneratedTopology* topo,
                                 OutputCommitBuffer* buffer)
    : topo_(topo), buffer_(buffer) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  failovers_counter_ = reg.FindCounter("ha.failover.count");
  recovery_ms_ = reg.FindHistogram("ha.failover.recovery_ms");
  rollback_us_ = reg.FindHistogram("ha.failover.rollback_us");
}

RecoveryRecord FailoverManager::KillAndRestore(uint32_t victim, SimTime now,
                                               const CommittedEpoch& target) {
  assert(victim < topo_->partition_count());
  assert(target.at <= now);
  // Post-fault forensics: when the flight recorder is armed, dump the
  // pre-kill window before recovery mutates anything — not only on the first
  // invariant violation.
  obs::TraceSession::Global().DumpRingNow("failover recovery start");
  obs::EpochLedger& ledger = obs::EpochLedger::Global();
  const bool lg = ledger.enabled();
  const double l0 = lg ? ledger.NowMs() : 0.0;
  const auto start = std::chrono::steady_clock::now();
  RecoveryRecord rec;
  rec.partition = victim;
  rec.killed_at = now;
  rec.restored_to = target.at;
  rec.epoch = target.epoch;

  obs::SpanId span = obs::TraceSession::Global().BeginSpan(
      "ha", "ha.failover", target.at);

  if (buffer_ != nullptr) {
    rec.discarded = buffer_->DiscardUnreleasedFrom(victim, target.epoch);
  }
  topo_->partition_sim(victim)->ResetForRestore(target.at);
  // Epoch 0's bootstrap images exist even when the run is younger than one
  // period, so a restore target is always available.
  rec.ok = victim < target.images.size() && target.images[victim] != nullptr &&
           topo_->RestoreHaPartition(victim, *target.images[victim]);
  if (rec.ok && buffer_ != nullptr) {
    rec.replayed = buffer_->ReplayInbound(victim, target.at);
  }

  rec.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  failovers_counter_->Increment();
  recovery_ms_->Observe(rec.wall_ms);
  rollback_us_->Observe(static_cast<double>(now - target.at) /
                        static_cast<double>(kMicrosecond));
  obs::TraceSession& session = obs::TraceSession::Global();
  session.AddSpanArg(span, "partition", static_cast<double>(victim));
  session.AddSpanArg(span, "epoch", static_cast<double>(target.epoch));
  session.AddSpanArg(span, "replayed", static_cast<double>(rec.replayed));
  session.AddSpanArg(span, "discarded", static_cast<double>(rec.discarded));
  session.EndSpan(span, now);
  if (lg) {
    ledger.StampHere(static_cast<int32_t>(victim), "failover", l0,
                     ledger.NowMs(), "fault",
                     {{"epoch", static_cast<double>(target.epoch)},
                      {"replayed", static_cast<double>(rec.replayed)},
                      {"discarded", static_cast<double>(rec.discarded)}});
  }

  recoveries_.push_back(rec);
  return rec;
}

}  // namespace ha
}  // namespace tcsim
