// The local (single-node) transparent live checkpoint (Section 4.1-4.2).
//
// Timeline of one checkpoint of an experiment node:
//
//   request ──► pre-copy (guest running; Dom0 steals some CPU)
//           ──► ATOMIC SUSPEND at the scheduled instant:
//                 engage temporal firewall, stop threads & timers,
//                 freeze virtual time & runstate accounting, suspend NICs
//           ──► drain in-flight block requests (block IRQs outside firewall)
//           ──► stop-and-copy residual dirty memory + serialize device state
//                 (this interval is the checkpoint downtime)
//           ──► [hold for coordinator barrier, if distributed]
//           ──► ATOMIC RESUME:
//                 compensate virtual TSC (transparent) or not (baseline),
//                 unfreeze time & runstate, reopen devices, replay NIC log,
//                 disengage firewall
//           ──► background writeback of the image to the snapshot disk
//                 (Dom0 activity; the residual perturbation of Figs. 5-6).

#ifndef TCSIM_SRC_CHECKPOINT_LOCAL_CHECKPOINT_H_
#define TCSIM_SRC_CHECKPOINT_LOCAL_CHECKPOINT_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/checkpoint/participant.h"
#include "src/guest/node.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_session.h"
#include "src/repo/checkpoint_repo.h"
#include "src/sim/checkpointable.h"
#include "src/sim/image.h"
#include "src/sim/image_store.h"
#include "src/sim/staging.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/xen/hypervisor.h"

namespace tcsim {

// Knobs controlling checkpoint behaviour; the defaults are the paper's
// transparent configuration, the alternatives are evaluation baselines.
struct CheckpointPolicy {
  // Freeze guest time during the checkpoint and compensate the virtual TSC
  // at resume. Disabling this yields the non-transparent baseline: the guest
  // observes the downtime as lost time.
  bool transparent_time = true;

  // Use iterative pre-copy while running (live checkpoint). Disabling it
  // stop-copies the entire dirty set during the downtime.
  bool live_precopy = true;

  // Fixed cost of the suspend handshake and device-state serialization
  // (XenBus round trips, virtual device teardown).
  SimTime device_serialize_time = 2 * kMillisecond;

  // Mean extra latency frozen timers experience through the resume path
  // (suspend/resume bookkeeping). Bounded per checkpoint, it does not
  // accumulate — the empirical transparency limit of Figure 4 (~80 us).
  SimTime resume_timer_latency = 40 * kMicrosecond;

  // Emit format-v2 delta images: components unchanged since the previous
  // capture become delta-ref chunks (a CRC pin into the parent image) instead
  // of re-serialized payloads — the capture path becomes O(changed state).
  // Disabling this re-serializes everything into self-contained images (the
  // PR-2 baseline, and what tab_delta_capture compares against).
  bool delta_images = true;

  // Keep the whole parent chain in the engine's image store. Off by default:
  // the store is pruned to the latest capture after each checkpoint, which
  // bounds memory while still allowing delta emission against that parent.
  // Tests and the time-travel bench turn this on to materialize arbitrary
  // chain members later.
  bool retain_image_chain = false;

  // Two-phase capture: during the frozen window only clone component state
  // into reusable staging buffers (SnapshotState, no framing/CRC/repo I/O);
  // defer serialization, delta diffing, and the repository spill to a commit
  // step that runs after the atomic resume. The emitted image is byte-
  // identical to the synchronous path (test-enforced); only the frozen
  // window shrinks. Disabling reverts to serialize-inside-the-freeze.
  bool async_capture = true;

  LiveMemorySaver::Params saver;
};

// What the last capture actually emitted — the observability surface for the
// delta path (printed by bench/tab_delta_capture, asserted by tests).
struct CaptureStats {
  uint64_t image_id = 0;
  uint64_t parent_id = 0;       // 0 = self-contained capture
  size_t total_chunks = 0;
  size_t payload_chunks = 0;    // re-serialized (changed or first capture)
  size_t delta_chunks = 0;      // unchanged, emitted as parent CRC refs
  size_t version_skips = 0;     // delta chunks proven by version counter alone
                                // (component was never re-serialized)
  size_t crc_fallbacks = 0;     // delta chunks proven the expensive way: the
                                // component was re-serialized and its CRC
                                // matched the parent (uninstrumented or
                                // over-bumped state_version)
  size_t serialized_bytes = 0;  // size of the emitted (possibly delta) image
};

// Drives local checkpoints of one ExperimentNode. Also implements
// CheckpointParticipant so the distributed coordinator can schedule it.
class LocalCheckpointEngine : public CheckpointParticipant {
 public:
  LocalCheckpointEngine(Simulator* sim, ExperimentNode* node, CheckpointPolicy policy);

  // --- Standalone use (single-node checkpoints, Figures 4 and 5) -------------

  // Runs a complete checkpoint, resuming immediately after the state is
  // saved. `done` (optional) receives the record.
  void CheckpointNow(std::function<void(const LocalCheckpointRecord&)> done = nullptr);

  // --- CheckpointParticipant ---------------------------------------------------

  const std::string& name() const override { return node_->name(); }
  HardwareClock& clock() override { return node_->clock(); }
  void CheckpointAtLocal(SimTime local_time,
                         std::function<void(const LocalCheckpointRecord&)> saved) override;
  void ResumeAtLocal(SimTime local_time) override;

  // Immediately resumes a held (saved but suspended) checkpoint.
  void ResumeNow();

  const std::vector<LocalCheckpointRecord>& history() const { return history_; }
  const CheckpointPolicy& policy() const { return policy_; }
  bool in_progress() const { return in_progress_; }

  // --- Universal checkpoint-image layer ----------------------------------------
  //
  // Every checkpoint serializes the node's component list into a versioned
  // chunked container (src/sim/image.h) at the capture point — inside the
  // suspended window, after the memory image is saved and before resume.
  // Restore applies such an image to a freshly built experiment: rewind the
  // simulator to the saved instant, overwrite each component's data state
  // from its chunk, and run the ordinary atomic-resume path. Closures are
  // never serialized; components re-register their own events (the
  // DMTCP-plugin-style discipline of src/sim/checkpointable.h).

  // Appends an extra component (typically workload progress state) after
  // the node's own components. Call before the first checkpoint.
  void AddCheckpointable(Checkpointable* component);

  // The composite image captured by the last completed save; null before
  // the first checkpoint. Shared, so time-travel tree nodes can retain
  // thousands of images cheaply. Always self-contained (materialized from
  // the delta chain when delta capture is on), so holders can restore it
  // without consulting the engine's image store.
  //
  // These accessors force any pending two-phase capture to commit first
  // (EnsureCaptureCommitted), so a held engine — saved but not yet resumed —
  // still observes the image its freeze phase staged.
  std::shared_ptr<const std::vector<uint8_t>> last_image() {
    EnsureCaptureCommitted();
    return last_image_;
  }

  // Store id of the last captured image (0 before the first checkpoint).
  // With policy().retain_image_chain, image_store() holds the whole chain
  // and can materialize any earlier capture by id.
  uint64_t last_image_id() {
    EnsureCaptureCommitted();
    return parent_image_id_;
  }

  // Emission breakdown of the last capture (delta vs payload chunks, bytes).
  const CaptureStats& last_capture_stats() {
    EnsureCaptureCommitted();
    return last_capture_stats_;
  }

  // The engine's image store: owns the capture chain, materializes full
  // images by id, and hard-rejects broken chains on ingest.
  ImageStore& image_store() {
    EnsureCaptureCommitted();
    return store_;
  }

  // Commits a pending two-phase capture (serialize + delta diff + store +
  // repo spill) if one is staged; no-op otherwise. Called automatically at
  // atomic resume and from the accessors above.
  void EnsureCaptureCommitted();

  // --- Spill-to-repository mode ------------------------------------------------
  //
  // With a repository attached, every capture is also put durably: delta
  // captures are stored as deltas against the previous spilled generation
  // (the repository resolves them on disk), so the per-capture disk cost is
  // O(changed state) too. If the repository cannot accept the delta (no
  // spilled parent yet, or it rejects the chain), the engine falls back to
  // spilling a self-contained materialization. Pass null to detach.
  void AttachRepository(CheckpointRepo* repo);

  // Repository handle of the last spilled capture (0 before the first
  // capture after attach, or if the last spill failed — see repo errors).
  uint64_t last_repo_handle() {
    EnsureCaptureCommitted();
    return repo_parent_handle_;
  }

  // Applies a composite image to this engine's (freshly built, running)
  // experiment and leaves it suspended-held at the saved instant. Returns
  // false without touching the run if the container is malformed (bad
  // magic, unsupported version, truncated, or CRC mismatch), if it still
  // contains unresolved delta-ref chunks (materialize through an ImageStore
  // first), or the engine metadata chunk is missing. Components without a
  // matching chunk keep their freshly built state (forward compatibility).
  bool RestoreImage(const std::vector<uint8_t>& image_bytes);

  // Resumes a run primed by RestoreImage — the O(image) restore path.
  void ResumeRestored();

 private:
  // Phase entry points.
  void BeginPreCopy(SimTime suspend_at_physical);
  void AtomicSuspend();
  void DrainAndSave();
  void OnStateSaved();
  void AtomicResume();

  // The node's components plus registered extras, built on first use.
  const std::vector<Checkpointable*>& Components();

  // Synchronous capture: serializes all components into the composite
  // container inside the frozen window and publishes it as last_image().
  void BuildCompositeImage();

  // Two-phase capture, freeze half: clones component state into the staging
  // buffer (version-skip entries carry no bytes at all). Runs inside the
  // frozen window; does no framing, CRC, or repo I/O.
  void SnapshotComponents();

  // Two-phase capture, background half: turns the staged snapshot into the
  // composite image — byte-identical to what BuildCompositeImage would have
  // emitted at the freeze point — and publishes/spills it.
  void CommitPendingCapture();

  // Shared capture tail: serialize the builder, ingest into the store,
  // publish last_image(), spill to the repository, prune, emit telemetry.
  void FinishCapture(CheckpointImageBuilder* builder, CaptureStats stats);

  Simulator* sim_;
  ExperimentNode* node_;
  CheckpointPolicy policy_;
  LiveMemorySaver saver_;
  Rng rng_;

  bool in_progress_ = false;
  bool hold_after_save_ = false;
  bool held_ = false;
  uint64_t residual_dirty_ = 0;
  LocalCheckpointRecord current_;
  std::function<void(const LocalCheckpointRecord&)> saved_cb_;
  std::vector<LocalCheckpointRecord> history_;

  bool components_built_ = false;
  std::vector<Checkpointable*> components_;
  std::vector<Checkpointable*> extra_components_;
  std::shared_ptr<const std::vector<uint8_t>> last_image_;

  // Per-component capture tracking for delta emission: the version counter
  // and payload CRC as of the last capture. `valid` means the tracked values
  // describe a chunk present (directly or via refs) in parent_image_id_.
  struct ComponentTrack {
    uint64_t version = 0;
    uint32_t crc = 0;
    bool valid = false;
  };

  ImageStore store_;
  std::vector<ComponentTrack> tracks_;
  uint64_t parent_image_id_ = 0;  // 0 = next capture is self-contained
  CaptureStats last_capture_stats_;

  // Two-phase capture state. The staged capture is pinned between the freeze
  // phase (SnapshotComponents, inside the frozen window) and the background
  // commit (CommitPendingCapture, after resume or on first accessor touch).
  StagingBufferPool pool_;
  StagedCapture staged_;
  bool pending_capture_ = false;
  uint64_t pending_parent_ = 0;  // parent id latched at freeze time

  CheckpointRepo* repo_ = nullptr;       // not owned
  uint64_t repo_parent_handle_ = 0;      // last spilled generation

  // Telemetry. Counters are resolved once at construction; the phase spans
  // live on this node's own track (the node name). The "ckpt.frozen" span
  // covers suspend -> resume, "ckpt.save" the suspend -> state-saved prefix
  // of it; the capture point emits a "ckpt.capture" instant carrying the
  // CaptureStats. All no-ops while tracing is off.
  obs::Counter* captures_counter_;
  obs::Counter* restores_counter_;
  obs::Counter* image_bytes_counter_;
  obs::Counter* serialized_bytes_counter_;
  obs::Counter* payload_chunks_counter_;
  obs::Counter* delta_chunks_counter_;
  obs::Histogram* frozen_wall_us_hist_;      // wall µs of the capture point
                                             // inside the frozen window
  obs::Histogram* background_wall_us_hist_;  // wall µs of the deferred commit
  obs::SpanId precopy_span_ = 0;
  obs::SpanId frozen_span_ = 0;
  obs::SpanId save_span_ = 0;
};

}  // namespace tcsim

#endif  // TCSIM_SRC_CHECKPOINT_LOCAL_CHECKPOINT_H_
