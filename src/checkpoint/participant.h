// Interface between the distributed checkpoint coordinator and the entities
// it checkpoints: experiment nodes (full VM checkpoints) and delay nodes
// (Dummynet-state checkpoints).

#ifndef TCSIM_SRC_CHECKPOINT_PARTICIPANT_H_
#define TCSIM_SRC_CHECKPOINT_PARTICIPANT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/clock/hardware_clock.h"
#include "src/sim/time.h"

namespace tcsim {

// Outcome of one participant's local checkpoint.
struct LocalCheckpointRecord {
  std::string participant;
  SimTime request_time = 0;     // physical time the request was issued
  SimTime suspended_at = 0;     // physical time execution actually stopped
  SimTime saved_at = 0;         // physical time the image was captured
  SimTime resumed_at = 0;       // physical time execution resumed
  uint64_t image_bytes = 0;
  SimTime downtime() const { return resumed_at - suspended_at; }
};

// One checkpointable entity. Scheduling is by the participant's *own* clock:
// the distributed protocol's precision is bounded by clock synchronization
// error, exactly as in the paper (Section 4.3).
class CheckpointParticipant {
 public:
  virtual ~CheckpointParticipant() = default;

  virtual const std::string& name() const = 0;

  virtual HardwareClock& clock() = 0;

  // Begins a local checkpoint that suspends when this participant's clock
  // reads `local_time` (clamped to "now" if already past). `saved` fires
  // once the local state is captured; the participant then stays suspended
  // until ResumeAtLocal.
  virtual void CheckpointAtLocal(SimTime local_time,
                                 std::function<void(const LocalCheckpointRecord&)> saved) = 0;

  // Schedules the resume when the local clock reads `local_time`.
  virtual void ResumeAtLocal(SimTime local_time) = 0;
};

}  // namespace tcsim

#endif  // TCSIM_SRC_CHECKPOINT_PARTICIPANT_H_
