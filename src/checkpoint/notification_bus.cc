#include "src/checkpoint/notification_bus.h"

#include <cassert>
#include <utility>

namespace tcsim {

namespace {
// Approximate wire size of a bus notification.
constexpr uint32_t kNotificationBytes = 128;
}  // namespace

NotificationBus::NotificationBus(NetworkStack* boss_stack, uint16_t port)
    : stack_(boss_stack), port_(port) {
  stack_->BindUdp(port_, [this](const Packet& pkt) {
    auto* msg = dynamic_cast<CheckpointControlMessage*>(pkt.payload.get());
    if (msg != nullptr && handler_) {
      handler_(*msg);
    }
  });
}

void NotificationBus::Publish(std::shared_ptr<CheckpointControlMessage> msg) {
  for (NodeId daemon : subscribers_) {
    stack_->SendUdp(daemon, kCheckpointDaemonPort, port_, kNotificationBytes, msg);
  }
}

CheckpointDaemon::CheckpointDaemon(NetworkStack* stack, NodeId boss_addr,
                                   CheckpointParticipant* participant, uint16_t port,
                                   uint16_t bus_port)
    : stack_(stack),
      boss_addr_(boss_addr),
      participant_(participant),
      port_(port),
      bus_port_(bus_port),
      processing_jitter_rng_(0xDAE11077ull ^ stack->addr()) {
  stack_->BindUdp(port_, [this](const Packet& pkt) { OnMessage(pkt); });
}

void CheckpointDaemon::OnMessage(const Packet& pkt) {
  auto* msg = dynamic_cast<CheckpointControlMessage*>(pkt.payload.get());
  if (msg == nullptr) {
    return;
  }
  switch (msg->type) {
    case CheckpointControlMessage::Type::kCheckpointAt:
      participant_->CheckpointAtLocal(
          msg->local_time, [this](const LocalCheckpointRecord& rec) { SendDone(rec); });
      break;
    case CheckpointControlMessage::Type::kCheckpointNow: {
      // Event-driven mode acts on receipt; suspension skew inherits the
      // daemon's stack-processing and scheduling jitter (hundreds of us to
      // milliseconds), which the scheduled mode's lead time absorbs.
      const SimTime jitter =
          static_cast<SimTime>(processing_jitter_rng_.Uniform(0.2e6, 3.0e6));
      participant_->CheckpointAtLocal(
          participant_->clock().LocalNow() + jitter,
          [this](const LocalCheckpointRecord& rec) { SendDone(rec); });
      break;
    }
    case CheckpointControlMessage::Type::kResumeAt:
      participant_->ResumeAtLocal(msg->local_time);
      break;
    case CheckpointControlMessage::Type::kDone:
      break;  // boss-bound only
  }
}

void CheckpointDaemon::SendDone(const LocalCheckpointRecord& record) {
  auto msg = std::make_shared<CheckpointControlMessage>();
  msg->type = CheckpointControlMessage::Type::kDone;
  msg->record = record;
  stack_->SendUdp(boss_addr_, bus_port_, port_, kNotificationBytes, std::move(msg));
}

}  // namespace tcsim
