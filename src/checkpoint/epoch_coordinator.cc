#include "src/checkpoint/epoch_coordinator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

namespace tcsim {

PartitionEpochCoordinator::PartitionEpochCoordinator(
    PartitionScheduler* scheduler, SimTime period, CaptureFn capture)
    : scheduler_(scheduler),
      period_(period),
      capture_(std::move(capture)),
      next_epoch_(period) {
  // A zero or negative period would leave next_epoch_ pinned at or below the
  // RunUntil target forever — fail fast instead of hanging the run.
  assert(period_ > 0 && "epoch period must be positive");
  if (period_ <= 0) {
    std::fprintf(stderr,
                 "PartitionEpochCoordinator: epoch period must be positive "
                 "(got %lld)\n",
                 static_cast<long long>(period_));
    std::abort();
  }
}

PartitionEpochCoordinator::~PartitionEpochCoordinator() { JoinBackground(); }

void PartitionEpochCoordinator::EnableAsyncCapture(SnapshotFn snapshot) {
  assert(snapshot);
  JoinBackground();
  snapshot_ = std::move(snapshot);
  async_ = true;
}

double PartitionEpochCoordinator::JoinBackground() {
  if (!background_.joinable()) {
    return 0.0;
  }
  const auto start = std::chrono::steady_clock::now();
  background_.join();
  const auto end = std::chrono::steady_clock::now();
  // Publish the joined commit's images on this (the coordinator) thread.
  // BackgroundCommit writes background_images_, never committed_images_, so
  // readers of last_epoch_images() between a launch and the next join edge
  // (the HA layer harvests at every barrier) never race the commit thread.
  committed_images_ = std::move(background_images_);
  background_images_.clear();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void PartitionEpochCoordinator::RunUntil(SimTime t) {
  obs::EpochLedger& ledger = obs::EpochLedger::Global();
  while (next_epoch_ <= t) {
    obs::EpochLedger::BindThread(obs::EpochLedger::kCoordinatorShard,
                                 epoch_index_);
    const double w0 = ledger.NowMs();
    if (ledger.enabled() && ledger_epoch_open_ms_ < 0) {
      ledger_epoch_open_ms_ = w0;
    }
    scheduler_->RunUntil(next_epoch_);
    ledger.StampHere(-1, "window", w0, ledger.NowMs(), "barrier");
    CaptureEpoch();
    next_epoch_ += period_;
    ++epoch_index_;
  }
  obs::EpochLedger::BindThread(obs::EpochLedger::kCoordinatorShard,
                               epoch_index_);
  const double w0 = ledger.NowMs();
  scheduler_->RunUntil(t);
  ledger.StampHere(-1, "window", w0, ledger.NowMs(), "horizon");
  // Callers read history()/CapturesDigest()/spill_handles() after RunUntil;
  // the join edge makes those reads race-free and means a returned RunUntil
  // always describes fully committed epochs.
  const double j0 = ledger.NowMs();
  JoinBackground();
  ledger.StampHere(-1, "commit_wait", j0, ledger.NowMs(), "final_join");
}

SimTime PartitionEpochCoordinator::StepEpoch(SimTime horizon) {
  obs::EpochLedger& ledger = obs::EpochLedger::Global();
  if (next_epoch_ <= horizon) {
    const SimTime barrier = next_epoch_;
    obs::EpochLedger::BindThread(obs::EpochLedger::kCoordinatorShard,
                                 epoch_index_);
    const double w0 = ledger.NowMs();
    if (ledger.enabled() && ledger_epoch_open_ms_ < 0) {
      ledger_epoch_open_ms_ = w0;
    }
    scheduler_->RunUntil(barrier);
    ledger.StampHere(-1, "window", w0, ledger.NowMs(), "barrier");
    CaptureEpoch();
    next_epoch_ += period_;
    ++epoch_index_;
    return barrier;
  }
  obs::EpochLedger::BindThread(obs::EpochLedger::kCoordinatorShard,
                               epoch_index_);
  const double w0 = ledger.NowMs();
  scheduler_->RunUntil(horizon);
  ledger.StampHere(-1, "window", w0, ledger.NowMs(), "horizon");
  const double j0 = ledger.NowMs();
  JoinBackground();
  ledger.StampHere(-1, "commit_wait", j0, ledger.NowMs(), "final_join");
  return horizon;
}

void PartitionEpochCoordinator::CloseEpochLedger(uint64_t k,
                                                 const char* mode) {
  obs::EpochLedger& ledger = obs::EpochLedger::Global();
  if (!ledger.enabled()) {
    return;
  }
  const double now = ledger.NowMs();
  obs::LedgerRecord rec;
  rec.epoch = k;
  rec.partition = -1;
  rec.phase = "epoch";
  rec.begin_ms = ledger_epoch_open_ms_ >= 0 ? ledger_epoch_open_ms_ : now;
  rec.end_ms = now;
  rec.cause = mode;
  ledger.Stamp(obs::EpochLedger::kCoordinatorShard, rec);
  ledger_epoch_open_ms_ = now;
}

void PartitionEpochCoordinator::CaptureEpochAsync() {
  obs::EpochLedger& ledger = obs::EpochLedger::Global();
  const bool lg = ledger.enabled();
  const uint64_t k = epoch_index_;
  EpochRecord rec;
  rec.async = true;
  rec.at = scheduler_->partition_count() > 0
               ? scheduler_->partition(0)->sim()->Now()
               : next_epoch_;
  // Only a *subsequent* epoch blocks on the previous epoch's commit: by the
  // time the system has simulated one more period, the commit has usually
  // long finished and this join is free.
  const double j0 = lg ? ledger.NowMs() : 0.0;
  rec.commit_wait_ms = JoinBackground();
  if (lg) {
    ledger.StampHere(-1, "commit_wait", j0, ledger.NowMs(),
                     "prev_epoch_commit");
  }

  staged_.resize(scheduler_->partition_count());
  const auto start = std::chrono::steady_clock::now();
  const double f0 = lg ? ledger.NowMs() : 0.0;
  // Freeze phase, inside the barrier: each partition clones its component
  // state into its pinned staging buffer — no archive framing, no CRC, no
  // repo I/O. Cost scales with dirty state, not image bytes.
  scheduler_->ForEachPartition([this, &ledger, lg, k](Partition* p) {
    const double p0 = lg ? ledger.NowMs() : 0.0;
    StagedCapture* staged = &staged_[p->id()];
    pool_.Acquire(staged);
    snapshot_(p, staged);
    if (lg) {
      obs::LedgerRecord lr;
      lr.epoch = k;
      lr.partition = static_cast<int32_t>(p->id());
      lr.phase = "freeze.partition";
      lr.begin_ms = p0;
      lr.end_ms = ledger.NowMs();
      lr.cause = "snapshot";
      ledger.Stamp(p->id(), lr);
    }
  });
  const auto end = std::chrono::steady_clock::now();
  if (lg) {
    ledger.StampHere(-1, "freeze", f0, ledger.NowMs(), "barrier");
  }
  rec.frozen_wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  rec.wall_ms = rec.frozen_wall_ms;

  history_.push_back(rec);
  const size_t index = history_.size() - 1;
  // The epoch's serial (frozen) span ends here: the background phase below
  // overlaps the next window and is attributed to this epoch by its labels.
  CloseEpochLedger(k, "async");
  // Background phase: partitions run the next window while this thread
  // serializes, digests, and spills. The previous thread was joined above,
  // so all repository work stays serialized on one owner at a time and the
  // members BackgroundCommit touches are handed off race-free. The spawn
  // itself is serial coordinator time (tens of microseconds) spent after the
  // epoch closed — stamped so fast epochs still attribute fully.
  const double l0 = lg ? ledger.NowMs() : 0.0;
  background_ = std::thread([this, index] { BackgroundCommit(index); });
  if (lg) {
    ledger.StampHere(-1, "commit_launch", l0, ledger.NowMs(), "thread_spawn");
  }
}

void PartitionEpochCoordinator::BackgroundCommit(size_t index) {
  obs::EpochLedger& ledger = obs::EpochLedger::Global();
  const bool lg = ledger.enabled();
  // history_ grows one record per epoch, so index + 1 is the 1-based epoch
  // this commit belongs to — the label its overlapped work carries.
  obs::EpochLedger::BindThread(obs::EpochLedger::kCommitShard,
                               static_cast<uint64_t>(index) + 1);
  const auto start = std::chrono::steady_clock::now();
  const double c0 = lg ? ledger.NowMs() : 0.0;
  EpochRecord& rec = history_[index];
  std::unique_ptr<RepoWriteBatch> batch =
      repo_ != nullptr ? repo_->BeginBatch() : nullptr;
  std::vector<std::shared_ptr<const std::vector<uint8_t>>> images(
      staged_.size());
  for (size_t p = 0; p < staged_.size(); ++p) {
    const double s0 = lg ? ledger.NowMs() : 0.0;
    auto image = std::make_shared<const std::vector<uint8_t>>(
        SerializeStagedImage(staged_[p]));
    if (lg) {
      ledger.StampHere(static_cast<int32_t>(p), "serialize.partition", s0,
                       ledger.NowMs(), "background");
    }
    rec.image_bytes += image->size();
    captures_digest_.MixBytes(image->data(), image->size());
    if (batch != nullptr) {
      batch->Stage(image, /*parent_handle=*/0, /*parent_ticket=*/0,
                   /*sequence=*/p + 1);
    }
    images[p] = std::move(image);
    pool_.Release(&staged_[p]);
  }
  if (batch != nullptr) {
    const auto spill_start = std::chrono::steady_clock::now();
    const CheckpointRepo::BatchCommitResult result =
        repo_->CommitBatch(std::move(batch));
    const auto spill_end = std::chrono::steady_clock::now();
    rec.spill_wall_ms =
        std::chrono::duration<double, std::milli>(spill_end - spill_start)
            .count();
    rec.spill_ok = result.ok;
    rec.spill_images = result.images;
    rec.spill_bytes = result.appended_payload_bytes;
    spill_handles_.clear();
    if (result.ok) {
      spill_handles_.assign(staged_.size(), 0);
      std::vector<uint64_t> sorted = result.handles;
      std::sort(sorted.begin(), sorted.end());
      for (size_t p = 0; p < sorted.size(); ++p) {
        spill_handles_[p] = sorted[p];
      }
    }
  }
  background_images_ = std::move(images);
  rec.background_wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  if (lg) {
    ledger.StampHere(-1, "commit", c0, ledger.NowMs(), "background");
  }
  obs::EpochLedger::UnbindThread();
}

void PartitionEpochCoordinator::CaptureEpoch() {
  if (async_) {
    CaptureEpochAsync();
    return;
  }
  obs::EpochLedger& ledger = obs::EpochLedger::Global();
  const bool lg = ledger.enabled();
  const uint64_t k = epoch_index_;
  EpochRecord rec;
  rec.at = scheduler_->partition_count() > 0
               ? scheduler_->partition(0)->sim()->Now()
               : next_epoch_;
  if (capture_) {
    images_.assign(scheduler_->partition_count(), nullptr);
    std::unique_ptr<RepoWriteBatch> batch =
        repo_ != nullptr ? repo_->BeginBatch() : nullptr;
    const auto start = std::chrono::steady_clock::now();
    const double c0 = lg ? ledger.NowMs() : 0.0;
    // Each capture runs as one pool task and writes only its own slot; the
    // phase barrier inside ForEachPartition publishes the slots back to this
    // thread. With a repository attached the worker also stages its image
    // into the shared batch right away (RepoWriteBatch::Stage is
    // thread-safe), so content hashing overlaps the remaining captures;
    // sequence = partition id keeps the commit order — and therefore the
    // repository's bytes — independent of worker interleaving.
    scheduler_->ForEachPartition([this, &batch, &ledger, lg, k](Partition* p) {
      const double p0 = lg ? ledger.NowMs() : 0.0;
      auto image = std::make_shared<const std::vector<uint8_t>>(capture_(p));
      if (batch != nullptr) {
        batch->Stage(image, /*parent_handle=*/0, /*parent_ticket=*/0,
                     /*sequence=*/p->id() + 1);
      }
      images_[p->id()] = std::move(image);
      if (lg) {
        obs::LedgerRecord lr;
        lr.epoch = k;
        lr.partition = static_cast<int32_t>(p->id());
        lr.phase = "capture.partition";
        lr.begin_ms = p0;
        lr.end_ms = ledger.NowMs();
        lr.cause = "serialize";
        ledger.Stamp(p->id(), lr);
      }
    });
    const auto end = std::chrono::steady_clock::now();
    rec.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    for (const auto& image : images_) {
      rec.image_bytes += image->size();
      captures_digest_.MixBytes(image->data(), image->size());
    }
    if (lg) {
      // The capture stamp closes after the digest fold: that fold is serial
      // coordinator work inside the frozen window too.
      ledger.StampHere(-1, "capture", c0, ledger.NowMs(), "barrier");
    }
    if (batch != nullptr) {
      const auto spill_start = std::chrono::steady_clock::now();
      const double s0 = lg ? ledger.NowMs() : 0.0;
      const CheckpointRepo::BatchCommitResult result =
          repo_->CommitBatch(std::move(batch));
      const auto spill_end = std::chrono::steady_clock::now();
      if (lg) {
        ledger.StampHere(-1, "spill", s0, ledger.NowMs(), "group_commit");
      }
      rec.spill_wall_ms =
          std::chrono::duration<double, std::milli>(spill_end - spill_start)
              .count();
      rec.spill_ok = result.ok;
      rec.spill_images = result.images;
      rec.spill_bytes = result.appended_payload_bytes;
      spill_handles_.clear();
      if (result.ok) {
        // Tickets were issued in stage (worker) order; sequence = partition
        // id is what fixed the handle order. Re-index by partition.
        spill_handles_.assign(scheduler_->partition_count(), 0);
        std::vector<uint64_t> sorted = result.handles;
        std::sort(sorted.begin(), sorted.end());
        for (size_t p = 0; p < sorted.size(); ++p) {
          spill_handles_[p] = sorted[p];
        }
      }
    }
    committed_images_ = std::move(images_);
    images_.clear();
  }
  history_.push_back(rec);
  CloseEpochLedger(k, "sync");
}

}  // namespace tcsim
