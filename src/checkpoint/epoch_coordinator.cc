#include "src/checkpoint/epoch_coordinator.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace tcsim {

PartitionEpochCoordinator::PartitionEpochCoordinator(
    PartitionScheduler* scheduler, SimTime period, CaptureFn capture)
    : scheduler_(scheduler),
      period_(period),
      capture_(std::move(capture)),
      next_epoch_(period) {
  // A zero or negative period would leave next_epoch_ pinned at or below the
  // RunUntil target forever — fail fast instead of hanging the run.
  assert(period_ > 0 && "epoch period must be positive");
  if (period_ <= 0) {
    std::fprintf(stderr,
                 "PartitionEpochCoordinator: epoch period must be positive "
                 "(got %lld)\n",
                 static_cast<long long>(period_));
    std::abort();
  }
}

void PartitionEpochCoordinator::RunUntil(SimTime t) {
  while (next_epoch_ <= t) {
    scheduler_->RunUntil(next_epoch_);
    CaptureEpoch();
    next_epoch_ += period_;
  }
  scheduler_->RunUntil(t);
}

void PartitionEpochCoordinator::CaptureEpoch() {
  EpochRecord rec;
  rec.at = scheduler_->partition_count() > 0
               ? scheduler_->partition(0)->sim()->Now()
               : next_epoch_;
  if (capture_) {
    images_.assign(scheduler_->partition_count(), {});
    const auto start = std::chrono::steady_clock::now();
    // Each capture runs as one pool task and writes only its own slot; the
    // phase barrier inside ForEachPartition publishes the slots back to this
    // thread.
    scheduler_->ForEachPartition(
        [this](Partition* p) { images_[p->id()] = capture_(p); });
    const auto end = std::chrono::steady_clock::now();
    rec.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    for (const std::vector<uint8_t>& image : images_) {
      rec.image_bytes += image.size();
      captures_digest_.MixBytes(image.data(), image.size());
    }
  }
  history_.push_back(rec);
}

}  // namespace tcsim
