#include "src/checkpoint/epoch_coordinator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

namespace tcsim {

PartitionEpochCoordinator::PartitionEpochCoordinator(
    PartitionScheduler* scheduler, SimTime period, CaptureFn capture)
    : scheduler_(scheduler),
      period_(period),
      capture_(std::move(capture)),
      next_epoch_(period) {
  // A zero or negative period would leave next_epoch_ pinned at or below the
  // RunUntil target forever — fail fast instead of hanging the run.
  assert(period_ > 0 && "epoch period must be positive");
  if (period_ <= 0) {
    std::fprintf(stderr,
                 "PartitionEpochCoordinator: epoch period must be positive "
                 "(got %lld)\n",
                 static_cast<long long>(period_));
    std::abort();
  }
}

void PartitionEpochCoordinator::RunUntil(SimTime t) {
  while (next_epoch_ <= t) {
    scheduler_->RunUntil(next_epoch_);
    CaptureEpoch();
    next_epoch_ += period_;
  }
  scheduler_->RunUntil(t);
}

void PartitionEpochCoordinator::CaptureEpoch() {
  EpochRecord rec;
  rec.at = scheduler_->partition_count() > 0
               ? scheduler_->partition(0)->sim()->Now()
               : next_epoch_;
  if (capture_) {
    images_.assign(scheduler_->partition_count(), nullptr);
    std::unique_ptr<RepoWriteBatch> batch =
        repo_ != nullptr ? repo_->BeginBatch() : nullptr;
    const auto start = std::chrono::steady_clock::now();
    // Each capture runs as one pool task and writes only its own slot; the
    // phase barrier inside ForEachPartition publishes the slots back to this
    // thread. With a repository attached the worker also stages its image
    // into the shared batch right away (RepoWriteBatch::Stage is
    // thread-safe), so content hashing overlaps the remaining captures;
    // sequence = partition id keeps the commit order — and therefore the
    // repository's bytes — independent of worker interleaving.
    scheduler_->ForEachPartition([this, &batch](Partition* p) {
      auto image = std::make_shared<const std::vector<uint8_t>>(capture_(p));
      if (batch != nullptr) {
        batch->Stage(image, /*parent_handle=*/0, /*parent_ticket=*/0,
                     /*sequence=*/p->id() + 1);
      }
      images_[p->id()] = std::move(image);
    });
    const auto end = std::chrono::steady_clock::now();
    rec.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    for (const auto& image : images_) {
      rec.image_bytes += image->size();
      captures_digest_.MixBytes(image->data(), image->size());
    }
    if (batch != nullptr) {
      const auto spill_start = std::chrono::steady_clock::now();
      const CheckpointRepo::BatchCommitResult result =
          repo_->CommitBatch(std::move(batch));
      const auto spill_end = std::chrono::steady_clock::now();
      rec.spill_wall_ms =
          std::chrono::duration<double, std::milli>(spill_end - spill_start)
              .count();
      rec.spill_ok = result.ok;
      rec.spill_images = result.images;
      rec.spill_bytes = result.appended_payload_bytes;
      spill_handles_.clear();
      if (result.ok) {
        // Tickets were issued in stage (worker) order; sequence = partition
        // id is what fixed the handle order. Re-index by partition.
        spill_handles_.assign(scheduler_->partition_count(), 0);
        std::vector<uint64_t> sorted = result.handles;
        std::sort(sorted.begin(), sorted.end());
        for (size_t p = 0; p < sorted.size(); ++p) {
          spill_handles_[p] = sorted[p];
        }
      }
    }
    images_.assign(scheduler_->partition_count(), nullptr);
  }
  history_.push_back(rec);
}

}  // namespace tcsim
