#include "src/checkpoint/epoch_coordinator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

namespace tcsim {

PartitionEpochCoordinator::PartitionEpochCoordinator(
    PartitionScheduler* scheduler, SimTime period, CaptureFn capture)
    : scheduler_(scheduler),
      period_(period),
      capture_(std::move(capture)),
      next_epoch_(period) {
  // A zero or negative period would leave next_epoch_ pinned at or below the
  // RunUntil target forever — fail fast instead of hanging the run.
  assert(period_ > 0 && "epoch period must be positive");
  if (period_ <= 0) {
    std::fprintf(stderr,
                 "PartitionEpochCoordinator: epoch period must be positive "
                 "(got %lld)\n",
                 static_cast<long long>(period_));
    std::abort();
  }
}

PartitionEpochCoordinator::~PartitionEpochCoordinator() { JoinBackground(); }

void PartitionEpochCoordinator::EnableAsyncCapture(SnapshotFn snapshot) {
  assert(snapshot);
  JoinBackground();
  snapshot_ = std::move(snapshot);
  async_ = true;
}

double PartitionEpochCoordinator::JoinBackground() {
  if (!background_.joinable()) {
    return 0.0;
  }
  const auto start = std::chrono::steady_clock::now();
  background_.join();
  const auto end = std::chrono::steady_clock::now();
  // Publish the joined commit's images on this (the coordinator) thread.
  // BackgroundCommit writes background_images_, never committed_images_, so
  // readers of last_epoch_images() between a launch and the next join edge
  // (the HA layer harvests at every barrier) never race the commit thread.
  committed_images_ = std::move(background_images_);
  background_images_.clear();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void PartitionEpochCoordinator::RunUntil(SimTime t) {
  while (next_epoch_ <= t) {
    scheduler_->RunUntil(next_epoch_);
    CaptureEpoch();
    next_epoch_ += period_;
  }
  scheduler_->RunUntil(t);
  // Callers read history()/CapturesDigest()/spill_handles() after RunUntil;
  // the join edge makes those reads race-free and means a returned RunUntil
  // always describes fully committed epochs.
  JoinBackground();
}

SimTime PartitionEpochCoordinator::StepEpoch(SimTime horizon) {
  if (next_epoch_ <= horizon) {
    const SimTime barrier = next_epoch_;
    scheduler_->RunUntil(barrier);
    CaptureEpoch();
    next_epoch_ += period_;
    return barrier;
  }
  scheduler_->RunUntil(horizon);
  JoinBackground();
  return horizon;
}

void PartitionEpochCoordinator::CaptureEpochAsync() {
  EpochRecord rec;
  rec.async = true;
  rec.at = scheduler_->partition_count() > 0
               ? scheduler_->partition(0)->sim()->Now()
               : next_epoch_;
  // Only a *subsequent* epoch blocks on the previous epoch's commit: by the
  // time the system has simulated one more period, the commit has usually
  // long finished and this join is free.
  rec.commit_wait_ms = JoinBackground();

  staged_.resize(scheduler_->partition_count());
  const auto start = std::chrono::steady_clock::now();
  // Freeze phase, inside the barrier: each partition clones its component
  // state into its pinned staging buffer — no archive framing, no CRC, no
  // repo I/O. Cost scales with dirty state, not image bytes.
  scheduler_->ForEachPartition([this](Partition* p) {
    StagedCapture* staged = &staged_[p->id()];
    pool_.Acquire(staged);
    snapshot_(p, staged);
  });
  const auto end = std::chrono::steady_clock::now();
  rec.frozen_wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  rec.wall_ms = rec.frozen_wall_ms;

  history_.push_back(rec);
  const size_t index = history_.size() - 1;
  // Background phase: partitions run the next window while this thread
  // serializes, digests, and spills. The previous thread was joined above,
  // so all repository work stays serialized on one owner at a time and the
  // members BackgroundCommit touches are handed off race-free.
  background_ = std::thread([this, index] { BackgroundCommit(index); });
}

void PartitionEpochCoordinator::BackgroundCommit(size_t index) {
  const auto start = std::chrono::steady_clock::now();
  EpochRecord& rec = history_[index];
  std::unique_ptr<RepoWriteBatch> batch =
      repo_ != nullptr ? repo_->BeginBatch() : nullptr;
  std::vector<std::shared_ptr<const std::vector<uint8_t>>> images(
      staged_.size());
  for (size_t p = 0; p < staged_.size(); ++p) {
    auto image = std::make_shared<const std::vector<uint8_t>>(
        SerializeStagedImage(staged_[p]));
    rec.image_bytes += image->size();
    captures_digest_.MixBytes(image->data(), image->size());
    if (batch != nullptr) {
      batch->Stage(image, /*parent_handle=*/0, /*parent_ticket=*/0,
                   /*sequence=*/p + 1);
    }
    images[p] = std::move(image);
    pool_.Release(&staged_[p]);
  }
  if (batch != nullptr) {
    const auto spill_start = std::chrono::steady_clock::now();
    const CheckpointRepo::BatchCommitResult result =
        repo_->CommitBatch(std::move(batch));
    const auto spill_end = std::chrono::steady_clock::now();
    rec.spill_wall_ms =
        std::chrono::duration<double, std::milli>(spill_end - spill_start)
            .count();
    rec.spill_ok = result.ok;
    rec.spill_images = result.images;
    rec.spill_bytes = result.appended_payload_bytes;
    spill_handles_.clear();
    if (result.ok) {
      spill_handles_.assign(staged_.size(), 0);
      std::vector<uint64_t> sorted = result.handles;
      std::sort(sorted.begin(), sorted.end());
      for (size_t p = 0; p < sorted.size(); ++p) {
        spill_handles_[p] = sorted[p];
      }
    }
  }
  background_images_ = std::move(images);
  rec.background_wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
}

void PartitionEpochCoordinator::CaptureEpoch() {
  if (async_) {
    CaptureEpochAsync();
    return;
  }
  EpochRecord rec;
  rec.at = scheduler_->partition_count() > 0
               ? scheduler_->partition(0)->sim()->Now()
               : next_epoch_;
  if (capture_) {
    images_.assign(scheduler_->partition_count(), nullptr);
    std::unique_ptr<RepoWriteBatch> batch =
        repo_ != nullptr ? repo_->BeginBatch() : nullptr;
    const auto start = std::chrono::steady_clock::now();
    // Each capture runs as one pool task and writes only its own slot; the
    // phase barrier inside ForEachPartition publishes the slots back to this
    // thread. With a repository attached the worker also stages its image
    // into the shared batch right away (RepoWriteBatch::Stage is
    // thread-safe), so content hashing overlaps the remaining captures;
    // sequence = partition id keeps the commit order — and therefore the
    // repository's bytes — independent of worker interleaving.
    scheduler_->ForEachPartition([this, &batch](Partition* p) {
      auto image = std::make_shared<const std::vector<uint8_t>>(capture_(p));
      if (batch != nullptr) {
        batch->Stage(image, /*parent_handle=*/0, /*parent_ticket=*/0,
                     /*sequence=*/p->id() + 1);
      }
      images_[p->id()] = std::move(image);
    });
    const auto end = std::chrono::steady_clock::now();
    rec.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    for (const auto& image : images_) {
      rec.image_bytes += image->size();
      captures_digest_.MixBytes(image->data(), image->size());
    }
    if (batch != nullptr) {
      const auto spill_start = std::chrono::steady_clock::now();
      const CheckpointRepo::BatchCommitResult result =
          repo_->CommitBatch(std::move(batch));
      const auto spill_end = std::chrono::steady_clock::now();
      rec.spill_wall_ms =
          std::chrono::duration<double, std::milli>(spill_end - spill_start)
              .count();
      rec.spill_ok = result.ok;
      rec.spill_images = result.images;
      rec.spill_bytes = result.appended_payload_bytes;
      spill_handles_.clear();
      if (result.ok) {
        // Tickets were issued in stage (worker) order; sequence = partition
        // id is what fixed the handle order. Re-index by partition.
        spill_handles_.assign(scheduler_->partition_count(), 0);
        std::vector<uint64_t> sorted = result.handles;
        std::sort(sorted.begin(), sorted.end());
        for (size_t p = 0; p < sorted.size(); ++p) {
          spill_handles_[p] = sorted[p];
        }
      }
    }
    committed_images_ = std::move(images_);
    images_.clear();
  }
  history_.push_back(rec);
}

}  // namespace tcsim
