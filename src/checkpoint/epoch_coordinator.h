// Checkpoint epochs over a partitioned simulation.
//
// The paper's distributed checkpoint needs every node stopped at one instant;
// in the partitioned kernel that instant is a scheduler barrier.
// PartitionScheduler::RunUntil(epoch) quiesces the whole system — every
// partition has fired all events up to the epoch, every cross-partition
// delivery due by then has been applied, and every clock reads exactly the
// epoch time, because conservative windows never cross the target. At that
// barrier the coordinator captures one checkpoint image per partition (on the
// scheduler's worker pool, so capture cost scales with partitions like event
// dispatch does) before releasing the next window.

#ifndef TCSIM_SRC_CHECKPOINT_EPOCH_COORDINATOR_H_
#define TCSIM_SRC_CHECKPOINT_EPOCH_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/obs/epoch_ledger.h"
#include "src/repo/checkpoint_repo.h"
#include "src/sim/digest.h"
#include "src/sim/partition.h"
#include "src/sim/scheduler.h"
#include "src/sim/staging.h"
#include "src/sim/time.h"

namespace tcsim {

class PartitionEpochCoordinator {
 public:
  // Returns the partition's checkpoint image bytes; runs at the epoch
  // barrier, possibly on a worker thread, and must touch only that partition.
  using CaptureFn = std::function<std::vector<uint8_t>(Partition*)>;

  // Freeze-phase snapshot for asynchronous epochs: clone the partition's
  // component state into the staged capture (no framing, CRC, or I/O). Runs
  // at the epoch barrier, possibly on a worker thread, and must touch only
  // that partition. The staged bytes are serialized on the background thread
  // and must be byte-identical to what CaptureFn would have returned.
  using SnapshotFn = std::function<void(Partition*, StagedCapture*)>;

  struct EpochRecord {
    SimTime at = 0;             // simulated instant of the barrier
    uint64_t image_bytes = 0;   // total bytes across partitions
    double wall_ms = 0.0;       // wall-clock cost of the frozen capture phase
                                // (async epochs: the freeze phase only)
    // Spill-to-repository stats (zero unless a repository is attached).
    bool spill_ok = false;        // the epoch's batch committed
    size_t spill_images = 0;      // images published by the batch
    uint64_t spill_bytes = 0;     // payload bytes appended (post-dedup)
    double spill_wall_ms = 0.0;   // wall-clock cost of the group commit
    // Two-phase (async) epoch stats, zero on synchronous epochs.
    bool async = false;
    double frozen_wall_ms = 0.0;      // barrier time: snapshot staging only
    double background_wall_ms = 0.0;  // overlapped serialize+hash+commit
    double commit_wait_ms = 0.0;      // barrier time this epoch spent blocked
                                      // on the previous epoch's commit
  };

  // Epochs fire at period, 2*period, ... `period` must be positive (the
  // coordinator aborts otherwise). `capture` may be empty, in which case
  // epochs only quiesce (barrier-cost measurement without capture).
  PartitionEpochCoordinator(PartitionScheduler* scheduler, SimTime period,
                            CaptureFn capture);

  // Joins any in-flight background commit.
  ~PartitionEpochCoordinator();

  // Switches epochs to two-phase capture: at the barrier each partition only
  // stages its snapshot (freeze phase, cheap), then partitions resume while a
  // background thread serializes the staged bytes, folds the digest, and
  // group-commits the repository batch. Only a *subsequent* epoch blocks on
  // the previous epoch's commit (recorded as commit_wait_ms). Digest and
  // repository bytes stay identical to synchronous capture; the repository's
  // single-owner thread contract holds because the previous background thread
  // is always joined before the next one starts, and RunUntil joins before
  // returning.
  void EnableAsyncCapture(SnapshotFn snapshot);

  // Advances the whole system to `t`, pausing at every epoch barrier on the
  // way. Resumable: successive calls continue the same epoch cadence. Any
  // background commit is joined before this returns, so history() and
  // CapturesDigest() always describe completed epochs.
  void RunUntil(SimTime t);

  // Single-step driver for the HA layer, which needs control back at every
  // barrier (to harvest images, release buffered output, and dispatch
  // faults) without joining the in-flight background commit the way RunUntil
  // does. Advances to the next epoch barrier — or to `horizon` if that comes
  // first — and returns the time reached. At a barrier it captures exactly
  // as RunUntil would; at the horizon it joins any in-flight commit. Mixing
  // StepEpoch and RunUntil calls is fine; both advance the same cadence.
  SimTime StepEpoch(SimTime horizon);

  // Joins any in-flight background commit, publishing last_epoch_images()
  // and the final history entry. Idempotent.
  void FinishCommits() { JoinBackground(); }

  // The next barrier's simulated instant.
  SimTime next_epoch() const { return next_epoch_; }

  // 1-based index of the next epoch to capture — the label every ledger
  // record of the currently running window carries.
  uint64_t epoch_index() const { return epoch_index_; }

  // Spill every epoch's captures into `repo` as one group-committed batch:
  // capture workers stage their partition's image into the shared batch as
  // soon as it is serialized (hashing overlaps the remaining captures), and
  // the barrier thread commits once — one segment flush, one journal record,
  // recovery all-or-nothing. Staging uses sequence = partition id, so the
  // repository's files are byte-identical to a sequential spill no matter how
  // captures interleave. Null detaches.
  void AttachRepository(CheckpointRepo* repo) { repo_ = repo; }

  const std::vector<EpochRecord>& history() const { return history_; }

  // Repository handles published by the most recent epoch's batch, indexed by
  // partition id. Empty before the first spilled epoch or after a failure.
  const std::vector<uint64_t>& spill_handles() const { return spill_handles_; }

  // Serialized images of the most recent fully captured epoch, indexed by
  // partition id. Valid after RunUntil returns (the background join edge
  // publishes them); empty before the first epoch or when epochs run without
  // a capture function. The HA layer harvests these at every barrier to keep
  // a restore window without re-serializing anything.
  const std::vector<std::shared_ptr<const std::vector<uint8_t>>>&
  last_epoch_images() const {
    return committed_images_;
  }

  // FNV-1a digest over every captured image's bytes, folded in (epoch,
  // partition id) order. Bit-identical between sequential and parallel runs
  // of one workload — the captures themselves are part of the oracle check.
  uint64_t CapturesDigest() const { return captures_digest_.value(); }

 private:
  void CaptureEpoch();
  void CaptureEpochAsync();
  // Serializes, digests, and spills the staged epoch at history_[index].
  // Runs on background_; every coordinator member it touches is protected by
  // the join edges (the thread is joined before the next epoch mutates them).
  void BackgroundCommit(size_t index);
  // Joins the in-flight background commit, returning the wall ms spent
  // blocked (0 when none was running or it had already finished).
  double JoinBackground();
  // Emits epoch `k`'s boundary ledger record (span: end of the previous
  // epoch's capture to now) and advances the open-edge bookkeeping.
  void CloseEpochLedger(uint64_t k, const char* mode);

  PartitionScheduler* scheduler_;
  SimTime period_;
  CaptureFn capture_;
  SnapshotFn snapshot_;  // non-empty once EnableAsyncCapture was called
  bool async_ = false;
  SimTime next_epoch_;
  uint64_t epoch_index_ = 1;  // 1-based; advances with next_epoch_
  // Wall instant (ledger clock) where the current epoch's span opened: the
  // end of the previous epoch's capture, or the first window's start. -1
  // until the ledger sees the first window.
  double ledger_epoch_open_ms_ = -1.0;
  CheckpointRepo* repo_ = nullptr;
  std::vector<EpochRecord> history_;
  // Scratch, indexed by partition. Shared ownership: the same buffer feeds
  // the digest fold here and, zero-copy, the repository batch.
  std::vector<std::shared_ptr<const std::vector<uint8_t>>> images_;
  // Async scratch, indexed by partition: pinned staging buffers reused across
  // epochs. Written by the freeze phase, read by the background commit — the
  // join edge between them is the synchronization.
  StagingBufferPool pool_;
  std::vector<StagedCapture> staged_;
  std::thread background_;
  std::vector<uint64_t> spill_handles_;
  // Most recent epoch's serialized images, indexed by partition. Written
  // only on the coordinator thread: at the end of each sync capture, or at
  // the join edge for async epochs (BackgroundCommit hands its images over
  // via background_images_), so last_epoch_images() is readable between
  // barriers while a commit is still in flight.
  std::vector<std::shared_ptr<const std::vector<uint8_t>>> committed_images_;
  std::vector<std::shared_ptr<const std::vector<uint8_t>>> background_images_;
  Fnv1aDigest captures_digest_;
};

}  // namespace tcsim

#endif  // TCSIM_SRC_CHECKPOINT_EPOCH_COORDINATOR_H_
