#include "src/checkpoint/coordinator.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace tcsim {

SimTime DistributedCheckpointRecord::SuspendSkew() const {
  if (locals.empty()) {
    return 0;
  }
  SimTime lo = locals.front().suspended_at;
  SimTime hi = lo;
  for (const LocalCheckpointRecord& rec : locals) {
    lo = std::min(lo, rec.suspended_at);
    hi = std::max(hi, rec.suspended_at);
  }
  return hi - lo;
}

SimTime DistributedCheckpointRecord::TotalFrozenSpan() const {
  if (locals.empty()) {
    return 0;
  }
  SimTime first_suspend = locals.front().suspended_at;
  SimTime last_save = locals.front().saved_at;
  for (const LocalCheckpointRecord& rec : locals) {
    first_suspend = std::min(first_suspend, rec.suspended_at);
    last_save = std::max(last_save, rec.saved_at);
  }
  return last_save - first_suspend;
}

uint64_t DistributedCheckpointRecord::TotalImageBytes() const {
  uint64_t total = 0;
  for (const LocalCheckpointRecord& rec : locals) {
    total += rec.image_bytes;
  }
  return total;
}

std::vector<std::string> AuditCheckpointRecord(const DistributedCheckpointRecord& record,
                                               SimTime scheduled_skew_bound) {
  std::vector<std::string> violations;
  if (record.expected_participants > 0 &&
      record.locals.size() != record.expected_participants) {
    std::ostringstream out;
    out << "barrier collected " << record.locals.size() << " locals, expected "
        << record.expected_participants;
    violations.push_back(out.str());
  }
  std::unordered_set<std::string> seen;
  for (const LocalCheckpointRecord& local : record.locals) {
    if (!seen.insert(local.participant).second) {
      violations.push_back("participant counted twice at the barrier: " + local.participant);
    }
  }
  if (scheduled_skew_bound > 0 && record.scheduled_local_time != 0 &&
      record.SuspendSkew() > scheduled_skew_bound) {
    std::ostringstream out;
    out << "scheduled checkpoint suspend skew " << ToMicroseconds(record.SuspendSkew())
        << " us exceeds bound " << ToMicroseconds(scheduled_skew_bound) << " us";
    violations.push_back(out.str());
  }
  return violations;
}

DistributedCoordinator::DistributedCoordinator(Simulator* sim, NotificationBus* bus,
                                               HardwareClock* boss_clock)
    : sim_(sim),
      bus_(bus),
      boss_clock_(boss_clock),
      rounds_counter_(
          obs::MetricsRegistry::Global().FindCounter("checkpoint.coordinator.rounds")),
      duplicate_done_counter_(obs::MetricsRegistry::Global().FindCounter(
          "checkpoint.coordinator.duplicate_done")) {
  bus_->SetServerHandler([this](const CheckpointControlMessage& msg) {
    if (msg.type == CheckpointControlMessage::Type::kDone) {
      OnDone(msg.record);
    }
  });
}

void DistributedCoordinator::BeginRound(
    std::function<void(const DistributedCheckpointRecord&)> done, bool hold) {
  assert(!in_progress_);
  in_progress_ = true;
  hold_ = hold;
  held_ = false;
  current_ = DistributedCheckpointRecord{};
  done_participants_.clear();
  done_cb_ = std::move(done);
  // The barrier counts the *live* subscriber set at round start: participants
  // subscribing after the coordinator was built (or between rounds) must be
  // waited for, or the barrier completes early and resumes a half-suspended
  // experiment.
  expected_ = expected_override_ > 0 ? expected_override_ : bus_->subscriber_count();
  current_.expected_participants = expected_;

  obs::TraceSession& trace = obs::TraceSession::Global();
  epoch_span_ = trace.BeginSpan("coordinator", hold ? "ckpt.epoch.hold" : "ckpt.epoch",
                                sim_->Now());
  trace.AddSpanArg(epoch_span_, "expected", static_cast<double>(expected_));
  quiesce_span_ = trace.BeginSpan("coordinator", "ckpt.quiesce", sim_->Now());
  barrier_span_ = 0;
  resume_span_ = 0;
}

void DistributedCoordinator::CheckpointScheduled(
    SimTime lead, std::function<void(const DistributedCheckpointRecord&)> done) {
  BeginRound(std::move(done), /*hold=*/false);

  auto msg = std::make_shared<CheckpointControlMessage>();
  msg->type = CheckpointControlMessage::Type::kCheckpointAt;
  msg->local_time = boss_clock_->LocalNow() + lead;
  current_.scheduled_local_time = msg->local_time;
  bus_->Publish(std::move(msg));
}

void DistributedCoordinator::CheckpointImmediate(
    std::function<void(const DistributedCheckpointRecord&)> done) {
  BeginRound(std::move(done), /*hold=*/false);

  auto msg = std::make_shared<CheckpointControlMessage>();
  msg->type = CheckpointControlMessage::Type::kCheckpointNow;
  bus_->Publish(std::move(msg));
}

void DistributedCoordinator::OnDone(const LocalCheckpointRecord& record) {
  if (!in_progress_) {
    return;
  }
  if (!done_participants_.insert(record.participant).second) {
    // A duplicate kDone (retransmission, confused daemon) must not count
    // toward the barrier — it would complete the round while some
    // participant is still saving. Record it as an audit violation rather
    // than silently finishing early.
    ++duplicate_done_count_;
    duplicate_done_counter_->Increment();
    if (invariants_ != nullptr) {
      invariants_->ReportViolation(
          "checkpoint.barrier", "duplicate kDone from participant " + record.participant);
    }
    return;
  }
  if (current_.locals.size() >= expected_) {
    // The barrier already completed (possible when the expected count is
    // pinned below the live subscriber set): a straggler reporting during the
    // resume window must not mutate the completed round's record.
    obs::TraceSession::Global().Instant("coordinator", "ckpt.straggler_done", sim_->Now());
    return;
  }
  if (current_.locals.empty()) {
    // First participant has saved: quiescing is over, the barrier collects.
    obs::TraceSession& trace = obs::TraceSession::Global();
    trace.EndSpan(quiesce_span_, sim_->Now());
    quiesce_span_ = 0;
    barrier_span_ = trace.BeginSpan("coordinator", "ckpt.barrier", sim_->Now());
  }
  current_.locals.push_back(record);
  if (current_.locals.size() >= expected_) {
    FinishRound();
  }
}

void DistributedCoordinator::CheckpointScheduledAndHold(
    SimTime lead, std::function<void(const DistributedCheckpointRecord&)> saved) {
  BeginRound(std::move(saved), /*hold=*/true);

  auto msg = std::make_shared<CheckpointControlMessage>();
  msg->type = CheckpointControlMessage::Type::kCheckpointAt;
  msg->local_time = boss_clock_->LocalNow() + lead;
  current_.scheduled_local_time = msg->local_time;
  bus_->Publish(std::move(msg));
}

void DistributedCoordinator::ResumeAll(std::function<void()> resumed) {
  assert(held_);
  held_ = false;
  current_.resume_local_time = boss_clock_->LocalNow() + resume_margin_;
  auto msg = std::make_shared<CheckpointControlMessage>();
  msg->type = CheckpointControlMessage::Type::kResumeAt;
  msg->local_time = current_.resume_local_time;
  bus_->Publish(std::move(msg));

  resume_span_ = obs::TraceSession::Global().BeginSpan("coordinator", "ckpt.resume",
                                                       sim_->Now());
  boss_clock_->ScheduleAtLocal(current_.resume_local_time + kMillisecond,
                               [this, resumed = std::move(resumed)] {
                                 in_progress_ = false;
                                 history_.push_back(current_);
                                 EndEpochSpans();
                                 if (resumed) {
                                   resumed();
                                 }
                               });
}

void DistributedCoordinator::EndEpochSpans() {
  obs::TraceSession& trace = obs::TraceSession::Global();
  trace.EndSpan(resume_span_, sim_->Now());
  trace.AddSpanArg(epoch_span_, "collected",
                   static_cast<double>(history_.back().locals.size()));
  trace.EndSpan(epoch_span_, sim_->Now());
  resume_span_ = 0;
  epoch_span_ = 0;
}

void DistributedCoordinator::FinishRound() {
  rounds_counter_->Increment();
  obs::TraceSession& trace = obs::TraceSession::Global();
  trace.AddSpanArg(barrier_span_, "expected", static_cast<double>(expected_));
  trace.AddSpanArg(barrier_span_, "collected",
                   static_cast<double>(current_.locals.size()));
  trace.AddSpanArg(barrier_span_, "duplicate_done",
                   static_cast<double>(duplicate_done_count_));
  trace.EndSpan(barrier_span_, sim_->Now());
  barrier_span_ = 0;

  if (hold_) {
    // Stateful swap-out: leave everything suspended; the caller resumes
    // later (possibly much later) via ResumeAll.
    held_ = true;
    if (done_cb_) {
      auto cb = std::move(done_cb_);
      cb(current_);
    }
    return;
  }
  // Barrier complete: schedule the synchronized resume.
  current_.resume_local_time = boss_clock_->LocalNow() + resume_margin_;
  auto msg = std::make_shared<CheckpointControlMessage>();
  msg->type = CheckpointControlMessage::Type::kResumeAt;
  msg->local_time = current_.resume_local_time;
  bus_->Publish(std::move(msg));

  resume_span_ = trace.BeginSpan("coordinator", "ckpt.resume", sim_->Now());
  // Report shortly after the resume instant, once everyone is running again.
  boss_clock_->ScheduleAtLocal(current_.resume_local_time + kMillisecond, [this] {
    in_progress_ = false;
    history_.push_back(current_);
    EndEpochSpans();
    if (done_cb_) {
      auto cb = std::move(done_cb_);
      cb(history_.back());
    }
  });
}

void DistributedCoordinator::RegisterInvariants(InvariantRegistry* reg,
                                                SimTime scheduled_skew_bound) {
  invariants_ = reg;
  // Each completed record is audited exactly once (the history only grows),
  // so a bad round is reported once rather than on every subsequent pass.
  auto audited = std::make_shared<size_t>(0);
  reg->Register("checkpoint.barrier",
                [this, scheduled_skew_bound, audited](AuditReport& report) {
    if (in_progress_ && current_.locals.size() > expected_) {
      std::ostringstream out;
      out << "in-progress round holds " << current_.locals.size()
          << " locals, more than the expected " << expected_;
      report.Fail(out.str());
    }
    for (; *audited < history_.size(); ++*audited) {
      for (std::string& violation :
           AuditCheckpointRecord(history_[*audited], scheduled_skew_bound)) {
        report.Fail(std::move(violation));
      }
    }
  });
}

}  // namespace tcsim
