#include "src/checkpoint/coordinator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tcsim {

SimTime DistributedCheckpointRecord::SuspendSkew() const {
  if (locals.empty()) {
    return 0;
  }
  SimTime lo = locals.front().suspended_at;
  SimTime hi = lo;
  for (const LocalCheckpointRecord& rec : locals) {
    lo = std::min(lo, rec.suspended_at);
    hi = std::max(hi, rec.suspended_at);
  }
  return hi - lo;
}

SimTime DistributedCheckpointRecord::TotalFrozenSpan() const {
  if (locals.empty()) {
    return 0;
  }
  SimTime first_suspend = locals.front().suspended_at;
  SimTime last_save = locals.front().saved_at;
  for (const LocalCheckpointRecord& rec : locals) {
    first_suspend = std::min(first_suspend, rec.suspended_at);
    last_save = std::max(last_save, rec.saved_at);
  }
  return last_save - first_suspend;
}

uint64_t DistributedCheckpointRecord::TotalImageBytes() const {
  uint64_t total = 0;
  for (const LocalCheckpointRecord& rec : locals) {
    total += rec.image_bytes;
  }
  return total;
}

DistributedCoordinator::DistributedCoordinator(Simulator* sim, NotificationBus* bus,
                                               HardwareClock* boss_clock)
    : sim_(sim), bus_(bus), boss_clock_(boss_clock) {
  bus_->SetServerHandler([this](const CheckpointControlMessage& msg) {
    if (msg.type == CheckpointControlMessage::Type::kDone) {
      OnDone(msg.record);
    }
  });
  expected_ = bus_->subscriber_count();
}

void DistributedCoordinator::CheckpointScheduled(
    SimTime lead, std::function<void(const DistributedCheckpointRecord&)> done) {
  assert(!in_progress_);
  in_progress_ = true;
  hold_ = false;
  current_ = DistributedCheckpointRecord{};
  done_cb_ = std::move(done);
  if (expected_ == 0) {
    expected_ = bus_->subscriber_count();
  }

  auto msg = std::make_shared<CheckpointControlMessage>();
  msg->type = CheckpointControlMessage::Type::kCheckpointAt;
  msg->local_time = boss_clock_->LocalNow() + lead;
  current_.scheduled_local_time = msg->local_time;
  bus_->Publish(std::move(msg));
}

void DistributedCoordinator::CheckpointImmediate(
    std::function<void(const DistributedCheckpointRecord&)> done) {
  assert(!in_progress_);
  in_progress_ = true;
  hold_ = false;
  current_ = DistributedCheckpointRecord{};
  done_cb_ = std::move(done);
  if (expected_ == 0) {
    expected_ = bus_->subscriber_count();
  }

  auto msg = std::make_shared<CheckpointControlMessage>();
  msg->type = CheckpointControlMessage::Type::kCheckpointNow;
  bus_->Publish(std::move(msg));
}

void DistributedCoordinator::OnDone(const LocalCheckpointRecord& record) {
  if (!in_progress_) {
    return;
  }
  current_.locals.push_back(record);
  if (current_.locals.size() >= expected_) {
    FinishRound();
  }
}

void DistributedCoordinator::CheckpointScheduledAndHold(
    SimTime lead, std::function<void(const DistributedCheckpointRecord&)> saved) {
  assert(!in_progress_);
  in_progress_ = true;
  hold_ = true;
  held_ = false;
  current_ = DistributedCheckpointRecord{};
  done_cb_ = std::move(saved);
  if (expected_ == 0) {
    expected_ = bus_->subscriber_count();
  }

  auto msg = std::make_shared<CheckpointControlMessage>();
  msg->type = CheckpointControlMessage::Type::kCheckpointAt;
  msg->local_time = boss_clock_->LocalNow() + lead;
  current_.scheduled_local_time = msg->local_time;
  bus_->Publish(std::move(msg));
}

void DistributedCoordinator::ResumeAll(std::function<void()> resumed) {
  assert(held_);
  held_ = false;
  current_.resume_local_time = boss_clock_->LocalNow() + resume_margin_;
  auto msg = std::make_shared<CheckpointControlMessage>();
  msg->type = CheckpointControlMessage::Type::kResumeAt;
  msg->local_time = current_.resume_local_time;
  bus_->Publish(std::move(msg));

  boss_clock_->ScheduleAtLocal(current_.resume_local_time + kMillisecond,
                               [this, resumed = std::move(resumed)] {
                                 in_progress_ = false;
                                 history_.push_back(current_);
                                 if (resumed) {
                                   resumed();
                                 }
                               });
}

void DistributedCoordinator::FinishRound() {
  if (hold_) {
    // Stateful swap-out: leave everything suspended; the caller resumes
    // later (possibly much later) via ResumeAll.
    held_ = true;
    if (done_cb_) {
      auto cb = std::move(done_cb_);
      cb(current_);
    }
    return;
  }
  // Barrier complete: schedule the synchronized resume.
  current_.resume_local_time = boss_clock_->LocalNow() + resume_margin_;
  auto msg = std::make_shared<CheckpointControlMessage>();
  msg->type = CheckpointControlMessage::Type::kResumeAt;
  msg->local_time = current_.resume_local_time;
  bus_->Publish(std::move(msg));

  // Report shortly after the resume instant, once everyone is running again.
  boss_clock_->ScheduleAtLocal(current_.resume_local_time + kMillisecond, [this] {
    in_progress_ = false;
    history_.push_back(current_);
    if (done_cb_) {
      auto cb = std::move(done_cb_);
      cb(history_.back());
    }
  });
}

}  // namespace tcsim
