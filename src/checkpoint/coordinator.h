// The distributed coordinated checkpoint (Section 4.3).
//
// Scheduled mode: the coordinator publishes "checkpoint at time t", chosen
// far enough ahead for the notification to propagate; each participant
// suspends when its *own NTP-disciplined clock* reads t, so suspension skew
// is bounded by residual clock error rather than by network jitter.
// Event-driven mode publishes "checkpoint now"; skew is then bounded by
// notification propagation and processing jitter (measurably worse — the
// reason the paper prefers scheduled checkpoints).
//
// After all participants report their state saved (the barrier), the
// coordinator publishes a synchronized "resume at time r" so everyone
// resumes near-simultaneously.

#ifndef TCSIM_SRC_CHECKPOINT_COORDINATOR_H_
#define TCSIM_SRC_CHECKPOINT_COORDINATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/checkpoint/notification_bus.h"
#include "src/checkpoint/participant.h"
#include "src/clock/hardware_clock.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace tcsim {

// Outcome of one distributed checkpoint.
struct DistributedCheckpointRecord {
  SimTime scheduled_local_time = 0;  // 0 for event-driven checkpoints
  SimTime resume_local_time = 0;
  std::vector<LocalCheckpointRecord> locals;

  // Spread of actual suspension instants across participants — the
  // coordinated checkpoint's precision.
  SimTime SuspendSkew() const;

  // Latest save completion minus earliest suspension: the span during which
  // at least one participant was frozen.
  SimTime TotalFrozenSpan() const;

  uint64_t TotalImageBytes() const;
};

class DistributedCoordinator {
 public:
  // `boss_clock` is the coordinator's own synchronized clock; notifications
  // go out through `bus`.
  DistributedCoordinator(Simulator* sim, NotificationBus* bus, HardwareClock* boss_clock);

  DistributedCoordinator(const DistributedCoordinator&) = delete;
  DistributedCoordinator& operator=(const DistributedCoordinator&) = delete;

  // Number of participants expected at the barrier (== bus subscribers that
  // act on checkpoint notifications).
  void SetExpectedParticipants(size_t n) { expected_ = n; }

  // Publishes "checkpoint at now + lead" and, once the barrier completes,
  // "resume at <barrier + margin>". `done` fires after the resume time.
  void CheckpointScheduled(SimTime lead,
                           std::function<void(const DistributedCheckpointRecord&)> done);

  // Event-driven variant: "checkpoint now" on receipt.
  void CheckpointImmediate(std::function<void(const DistributedCheckpointRecord&)> done);

  // Like CheckpointScheduled, but the experiment is left suspended after the
  // barrier (stateful swap-out uses this); `saved` fires once every
  // participant has captured its state.
  void CheckpointScheduledAndHold(
      SimTime lead, std::function<void(const DistributedCheckpointRecord&)> saved);

  // Resumes a held checkpoint: publishes a synchronized resume. `resumed`
  // fires shortly after the resume instant.
  void ResumeAll(std::function<void()> resumed = nullptr);

  // Slack between barrier completion and the synchronized resume instant.
  void set_resume_margin(SimTime margin) { resume_margin_ = margin; }

  const std::vector<DistributedCheckpointRecord>& history() const { return history_; }
  bool in_progress() const { return in_progress_; }

 private:
  void OnDone(const LocalCheckpointRecord& record);
  void FinishRound();

  Simulator* sim_;
  NotificationBus* bus_;
  HardwareClock* boss_clock_;
  size_t expected_ = 0;
  SimTime resume_margin_ = 5 * kMillisecond;

  bool in_progress_ = false;
  bool hold_ = false;
  bool held_ = false;
  DistributedCheckpointRecord current_;
  std::function<void(const DistributedCheckpointRecord&)> done_cb_;
  std::vector<DistributedCheckpointRecord> history_;
};

}  // namespace tcsim

#endif  // TCSIM_SRC_CHECKPOINT_COORDINATOR_H_
