// The distributed coordinated checkpoint (Section 4.3).
//
// Scheduled mode: the coordinator publishes "checkpoint at time t", chosen
// far enough ahead for the notification to propagate; each participant
// suspends when its *own NTP-disciplined clock* reads t, so suspension skew
// is bounded by residual clock error rather than by network jitter.
// Event-driven mode publishes "checkpoint now"; skew is then bounded by
// notification propagation and processing jitter (measurably worse — the
// reason the paper prefers scheduled checkpoints).
//
// After all participants report their state saved (the barrier), the
// coordinator publishes a synchronized "resume at time r" so everyone
// resumes near-simultaneously.

#ifndef TCSIM_SRC_CHECKPOINT_COORDINATOR_H_
#define TCSIM_SRC_CHECKPOINT_COORDINATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/checkpoint/notification_bus.h"
#include "src/checkpoint/participant.h"
#include "src/clock/hardware_clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_session.h"
#include "src/sim/invariants.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace tcsim {

// Outcome of one distributed checkpoint.
struct DistributedCheckpointRecord {
  SimTime scheduled_local_time = 0;  // 0 for event-driven checkpoints
  SimTime resume_local_time = 0;
  size_t expected_participants = 0;  // barrier size when the round started
  std::vector<LocalCheckpointRecord> locals;

  // Spread of actual suspension instants across participants — the
  // coordinated checkpoint's precision.
  SimTime SuspendSkew() const;

  // Latest save completion minus earliest suspension: the span during which
  // at least one participant was frozen.
  SimTime TotalFrozenSpan() const;

  uint64_t TotalImageBytes() const;
};

// Sanity-checks one completed checkpoint record: the barrier collected
// exactly the expected number of locals, no participant appears twice, and —
// for scheduled checkpoints, when `scheduled_skew_bound` > 0 — the suspend
// skew stays within the clock-synchronization bound. Returns one message per
// violation (empty == sane). Exposed as a free function so tests can prove
// the audit fires on deliberately broken records.
std::vector<std::string> AuditCheckpointRecord(const DistributedCheckpointRecord& record,
                                               SimTime scheduled_skew_bound);

class DistributedCoordinator {
 public:
  // `boss_clock` is the coordinator's own synchronized clock; notifications
  // go out through `bus`.
  DistributedCoordinator(Simulator* sim, NotificationBus* bus, HardwareClock* boss_clock);

  DistributedCoordinator(const DistributedCoordinator&) = delete;
  DistributedCoordinator& operator=(const DistributedCoordinator&) = delete;

  // Overrides the barrier size. By default each round counts the bus's *live*
  // subscriber set at the instant the round starts (participants may
  // subscribe between rounds); pass a nonzero `n` to pin it, 0 to restore
  // the live-count behaviour.
  void SetExpectedParticipants(size_t n) { expected_override_ = n; }

  // Publishes "checkpoint at now + lead" and, once the barrier completes,
  // "resume at <barrier + margin>". `done` fires after the resume time.
  void CheckpointScheduled(SimTime lead,
                           std::function<void(const DistributedCheckpointRecord&)> done);

  // Event-driven variant: "checkpoint now" on receipt.
  void CheckpointImmediate(std::function<void(const DistributedCheckpointRecord&)> done);

  // Like CheckpointScheduled, but the experiment is left suspended after the
  // barrier (stateful swap-out uses this); `saved` fires once every
  // participant has captured its state.
  void CheckpointScheduledAndHold(
      SimTime lead, std::function<void(const DistributedCheckpointRecord&)> saved);

  // Resumes a held checkpoint: publishes a synchronized resume. `resumed`
  // fires shortly after the resume instant.
  void ResumeAll(std::function<void()> resumed = nullptr);

  // Slack between barrier completion and the synchronized resume instant.
  void set_resume_margin(SimTime margin) { resume_margin_ = margin; }

  // Registers barrier-sanity audits (and event-driven duplicate reporting)
  // with `reg`. Completed rounds are checked with AuditCheckpointRecord; an
  // in-progress round must never have collected more locals than the
  // barrier expects. `scheduled_skew_bound` > 0 additionally bounds the
  // suspend skew of scheduled rounds (pass 0 to skip, e.g. for
  // non-transparent baselines).
  void RegisterInvariants(InvariantRegistry* reg, SimTime scheduled_skew_bound = 0);

  const std::vector<DistributedCheckpointRecord>& history() const { return history_; }
  bool in_progress() const { return in_progress_; }

  // Duplicate kDone messages observed (same participant reporting twice in
  // one round). Duplicates never count toward the barrier.
  uint64_t duplicate_done_count() const { return duplicate_done_count_; }

 private:
  void BeginRound(std::function<void(const DistributedCheckpointRecord&)> done, bool hold);
  void OnDone(const LocalCheckpointRecord& record);
  void FinishRound();
  // Closes the resume + epoch spans once the round's record is in history_.
  void EndEpochSpans();

  Simulator* sim_;
  NotificationBus* bus_;
  HardwareClock* boss_clock_;
  size_t expected_ = 0;           // barrier size of the current round
  size_t expected_override_ = 0;  // nonzero pins the barrier size
  SimTime resume_margin_ = 5 * kMillisecond;

  bool in_progress_ = false;
  bool hold_ = false;
  bool held_ = false;
  DistributedCheckpointRecord current_;
  std::unordered_set<std::string> done_participants_;
  std::function<void(const DistributedCheckpointRecord&)> done_cb_;
  std::vector<DistributedCheckpointRecord> history_;
  uint64_t duplicate_done_count_ = 0;
  InvariantRegistry* invariants_ = nullptr;

  // Telemetry. Counters are resolved once at construction; the epoch span and
  // its phase children (quiesce -> barrier -> resume) live on the
  // "coordinator" track. All no-ops while tracing is off.
  obs::Counter* rounds_counter_;
  obs::Counter* duplicate_done_counter_;
  obs::SpanId epoch_span_ = 0;
  obs::SpanId quiesce_span_ = 0;
  obs::SpanId barrier_span_ = 0;
  obs::SpanId resume_span_ = 0;
};

}  // namespace tcsim

#endif  // TCSIM_SRC_CHECKPOINT_COORDINATOR_H_
