// Checkpoint participation for delay nodes (Section 4.4).
//
// Instead of running delay nodes as virtual machines, the paper implements a
// dedicated live-checkpoint mechanism inside Dummynet: suspend the shaping
// engine, serialize the pipe/queue hierarchy non-destructively, and on
// resume virtualize time so queued packets keep their remaining delays.
// This participant wraps a DelayNode with that protocol so the distributed
// coordinator can schedule it like any experiment node.

#ifndef TCSIM_SRC_CHECKPOINT_DELAY_NODE_PARTICIPANT_H_
#define TCSIM_SRC_CHECKPOINT_DELAY_NODE_PARTICIPANT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/checkpoint/participant.h"
#include "src/dummynet/delay_node.h"
#include "src/sim/simulator.h"

namespace tcsim {

class DelayNodeParticipant : public CheckpointParticipant {
 public:
  // `serialize_time` models walking and serializing the pipe hierarchy.
  DelayNodeParticipant(Simulator* sim, DelayNode* node,
                       SimTime serialize_time = 300 * kMicrosecond)
      : sim_(sim), node_(node), serialize_time_(serialize_time) {}

  const std::string& name() const override { return node_->name(); }
  HardwareClock& clock() override { return node_->clock(); }

  void CheckpointAtLocal(SimTime local_time,
                         std::function<void(const LocalCheckpointRecord&)> saved) override;
  void ResumeAtLocal(SimTime local_time) override;

  DelayNode* node() { return node_; }

  // The serialized delay-node image captured by the last checkpoint; resume
  // restores from this image rather than trusting the live in-memory state.
  const std::vector<uint8_t>& held_image() const { return held_image_; }

 private:
  Simulator* sim_;
  DelayNode* node_;
  SimTime serialize_time_;
  LocalCheckpointRecord current_;
  std::vector<uint8_t> held_image_;
};

}  // namespace tcsim

#endif  // TCSIM_SRC_CHECKPOINT_DELAY_NODE_PARTICIPANT_H_
