// Publish-subscribe checkpoint notification bus over the control network.
//
// Section 4.3: Emulab's dedicated control LAN carries a fast pub-sub bus;
// all nodes subscribe, and any node can publish a notification ("checkpoint
// now", "checkpoint at time t", "resume at time t"). The bus lives on the
// boss server; subscribers are the per-node checkpoint daemons in Dom0 and
// on the delay nodes.

#ifndef TCSIM_SRC_CHECKPOINT_NOTIFICATION_BUS_H_
#define TCSIM_SRC_CHECKPOINT_NOTIFICATION_BUS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/checkpoint/participant.h"
#include "src/net/packet.h"
#include "src/net/stack.h"
#include "src/sim/random.h"

namespace tcsim {

// UDP port of the bus server on boss, and of the daemons on each node.
inline constexpr uint16_t kCheckpointBusPort = 16500;
inline constexpr uint16_t kCheckpointDaemonPort = 16501;

// The control messages carried on the bus.
struct CheckpointControlMessage : public AppPayload {
  enum class Type {
    kCheckpointAt,   // suspend when your clock reads `local_time`
    kCheckpointNow,  // suspend immediately on receipt (event-driven mode)
    kResumeAt,       // resume when your clock reads `local_time`
    kDone,           // daemon -> boss: local state saved
  };

  Type type = Type::kCheckpointNow;
  SimTime local_time = 0;
  LocalCheckpointRecord record;  // valid for kDone
};

// Boss-side bus: fans notifications out to every subscribed daemon and
// funnels daemon messages to a server handler.
class NotificationBus {
 public:
  NotificationBus(NetworkStack* boss_stack, uint16_t port = kCheckpointBusPort);

  // Registers a daemon (by its control-network address).
  void Subscribe(NodeId daemon_addr) { subscribers_.push_back(daemon_addr); }

  // Sends `msg` to every subscriber.
  void Publish(std::shared_ptr<CheckpointControlMessage> msg);

  // Handler for messages published *to* the bus by daemons (kDone).
  void SetServerHandler(std::function<void(const CheckpointControlMessage&)> handler) {
    handler_ = std::move(handler);
  }

  size_t subscriber_count() const { return subscribers_.size(); }

 private:
  NetworkStack* stack_;
  uint16_t port_;
  std::vector<NodeId> subscribers_;
  std::function<void(const CheckpointControlMessage&)> handler_;
};

// Per-node daemon: subscribes its participant to the bus and translates
// notifications into local checkpoint actions. Runs in Dom0 (or natively on
// a delay node), so it keeps working while the guest is suspended.
class CheckpointDaemon {
 public:
  CheckpointDaemon(NetworkStack* stack, NodeId boss_addr, CheckpointParticipant* participant,
                   uint16_t port = kCheckpointDaemonPort,
                   uint16_t bus_port = kCheckpointBusPort);

  CheckpointParticipant* participant() { return participant_; }
  NodeId addr() const { return stack_->addr(); }

 private:
  void OnMessage(const Packet& pkt);
  void SendDone(const LocalCheckpointRecord& record);

  NetworkStack* stack_;
  NodeId boss_addr_;
  CheckpointParticipant* participant_;
  uint16_t port_;
  uint16_t bus_port_;
  // Stack-processing and scheduling jitter for event-driven ("now")
  // notifications — the reason Section 4.3 prefers clock-scheduled
  // checkpoints, whose lead time absorbs this jitter.
  Rng processing_jitter_rng_;
};

}  // namespace tcsim

#endif  // TCSIM_SRC_CHECKPOINT_NOTIFICATION_BUS_H_
