#include "src/checkpoint/delay_node_participant.h"

#include <utility>

namespace tcsim {

void DelayNodeParticipant::CheckpointAtLocal(
    SimTime local_time, std::function<void(const LocalCheckpointRecord&)> saved) {
  node_->clock().ScheduleAtLocal(local_time, [this, saved = std::move(saved)] {
    current_ = LocalCheckpointRecord{};
    current_.participant = node_->name();
    current_.request_time = sim_->Now();
    current_.suspended_at = sim_->Now();
    node_->Suspend();
    // Serialize the pipe hierarchy non-destructively.
    const auto image = node_->SaveState();
    current_.image_bytes = image.size();
    sim_->Schedule(serialize_time_, [this, saved] {
      current_.saved_at = sim_->Now();
      saved(current_);
    });
  });
}

void DelayNodeParticipant::ResumeAtLocal(SimTime local_time) {
  node_->clock().ScheduleAtLocal(local_time, [this] {
    current_.resumed_at = sim_->Now();
    node_->Resume();
  });
}

}  // namespace tcsim
