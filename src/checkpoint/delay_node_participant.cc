#include "src/checkpoint/delay_node_participant.h"

#include <utility>

namespace tcsim {

void DelayNodeParticipant::CheckpointAtLocal(
    SimTime local_time, std::function<void(const LocalCheckpointRecord&)> saved) {
  node_->clock().ScheduleAtLocal(local_time, [this, saved = std::move(saved)] {
    current_ = LocalCheckpointRecord{};
    current_.participant = node_->name();
    current_.request_time = sim_->Now();
    current_.suspended_at = sim_->Now();
    node_->Suspend();
    // Serialize the pipe hierarchy non-destructively and hold the image:
    // this is the state the checkpoint promises to resume from.
    held_image_ = node_->SaveState();
    current_.image_bytes = held_image_.size();
    sim_->Schedule(serialize_time_, [this, saved] {
      current_.saved_at = sim_->Now();
      saved(current_);
    });
  });
}

void DelayNodeParticipant::ResumeAtLocal(SimTime local_time) {
  node_->clock().ScheduleAtLocal(local_time, [this] {
    current_.resumed_at = sim_->Now();
    // Re-apply the held image before unfreezing: resume proceeds from the
    // serialized checkpoint state, not from whatever the live structures
    // drifted to, so the saved image is authoritative. Packets that arrived
    // during the suspension stay logged and are ingested by Resume().
    if (!held_image_.empty()) {
      ArchiveReader r(held_image_);
      node_->ApplyImageInPlace(r);
    }
    node_->Resume();
  });
}

}  // namespace tcsim
