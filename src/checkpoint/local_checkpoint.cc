#include "src/checkpoint/local_checkpoint.h"

#include <cassert>
#include <chrono>
#include <utility>

namespace tcsim {

namespace {

// Wall-clock microseconds between two steady_clock samples. The frozen/
// background histograms measure real work done at one simulated instant, so
// sim-time is useless here — this is the one place the engine reads the host
// clock.
double WallMicros(std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

}  // namespace

LocalCheckpointEngine::LocalCheckpointEngine(Simulator* sim, ExperimentNode* node,
                                             CheckpointPolicy policy)
    : sim_(sim),
      node_(node),
      policy_(policy),
      saver_(sim, &node->hypervisor(), policy.saver),
      rng_(0x9E3779B9u ^ node->id()),
      captures_counter_(
          obs::MetricsRegistry::Global().FindCounter("checkpoint.engine.captures")),
      restores_counter_(
          obs::MetricsRegistry::Global().FindCounter("checkpoint.engine.restores")),
      image_bytes_counter_(
          obs::MetricsRegistry::Global().FindCounter("checkpoint.engine.image_bytes")),
      serialized_bytes_counter_(obs::MetricsRegistry::Global().FindCounter(
          "checkpoint.engine.serialized_bytes")),
      payload_chunks_counter_(obs::MetricsRegistry::Global().FindCounter(
          "checkpoint.engine.payload_chunks")),
      delta_chunks_counter_(
          obs::MetricsRegistry::Global().FindCounter("checkpoint.engine.delta_chunks")),
      frozen_wall_us_hist_(obs::MetricsRegistry::Global().FindHistogram(
          "checkpoint.engine.frozen_us")),
      background_wall_us_hist_(obs::MetricsRegistry::Global().FindHistogram(
          "checkpoint.engine.background_us")) {
  node_->kernel().SetResumeTimerLatency(policy_.resume_timer_latency,
                                        0xC0FFEEull ^ node->id());
}

void LocalCheckpointEngine::CheckpointNow(
    std::function<void(const LocalCheckpointRecord&)> done) {
  assert(!in_progress_);
  in_progress_ = true;
  hold_after_save_ = false;
  saved_cb_ = std::move(done);
  current_ = LocalCheckpointRecord{};
  current_.participant = node_->name();
  current_.request_time = sim_->Now();
  BeginPreCopy(/*suspend_at_physical=*/-1);
}

void LocalCheckpointEngine::CheckpointAtLocal(
    SimTime local_time, std::function<void(const LocalCheckpointRecord&)> saved) {
  assert(!in_progress_);
  in_progress_ = true;
  hold_after_save_ = true;
  saved_cb_ = std::move(saved);
  current_ = LocalCheckpointRecord{};
  current_.participant = node_->name();
  current_.request_time = sim_->Now();
  BeginPreCopy(node_->clock().PhysicalAt(local_time));
}

void LocalCheckpointEngine::BeginPreCopy(SimTime suspend_at_physical) {
  precopy_span_ =
      obs::TraceSession::Global().BeginSpan(node_->name(), "ckpt.precopy", sim_->Now());
  if (policy_.live_precopy) {
    // For a scheduled checkpoint the suspend event fires at the appointed
    // instant; pre-copy merely shrinks the dirty set before it.
    saver_.PreCopy([this, suspend_at_physical](uint64_t /*residual*/) {
      if (suspend_at_physical < 0) {
        AtomicSuspend();
      }
    });
    if (suspend_at_physical >= 0) {
      sim_->ScheduleAt(suspend_at_physical, [this] { AtomicSuspend(); });
    }
    return;
  }
  // Non-live baseline: the whole dirty set is stop-copied during downtime.
  saver_.ResetImage();
  if (suspend_at_physical >= 0) {
    sim_->ScheduleAt(suspend_at_physical, [this] { AtomicSuspend(); });
  } else {
    AtomicSuspend();
  }
}

void LocalCheckpointEngine::AtomicSuspend() {
  assert(in_progress_);
  current_.suspended_at = sim_->Now();

  obs::TraceSession& trace = obs::TraceSession::Global();
  trace.EndSpan(precopy_span_, sim_->Now());
  precopy_span_ = 0;
  frozen_span_ = trace.BeginSpan(node_->name(), "ckpt.frozen", sim_->Now());
  save_span_ = trace.BeginSpan(node_->name(), "ckpt.save", sim_->Now());

  // The instant the suspend thread (outside the firewall) commits the
  // suspension: every inside activity stops, the time page freezes, the TSC
  // is restricted, runstate accounting pauses, and the NICs begin logging.
  node_->kernel().StopInsideActivities();
  if (policy_.transparent_time) {
    node_->domain().FreezeTime();
  }
  node_->domain().SuspendRunstateAccounting();
  node_->experimental_nic()->Suspend();
  node_->control_nic()->Suspend();

  residual_dirty_ = node_->domain().DirtyBytes();
  DrainAndSave();
}

void LocalCheckpointEngine::DrainAndSave() {
  // Block IRQ handlers run outside the firewall so queued disk requests can
  // complete before device connections are torn down.
  node_->kernel().block().Quiesce([this] {
    saver_.StopCopy(residual_dirty_, [this] {
      sim_->Schedule(policy_.device_serialize_time, [this] { OnStateSaved(); });
    });
  });
}

const std::vector<Checkpointable*>& LocalCheckpointEngine::Components() {
  if (!components_built_) {
    components_built_ = true;
    node_->AppendCheckpointables(&components_);
    components_.insert(components_.end(), extra_components_.begin(),
                       extra_components_.end());
    extra_components_.clear();
  }
  return components_;
}

void LocalCheckpointEngine::AddCheckpointable(Checkpointable* component) {
  if (components_built_) {
    components_.push_back(component);
  } else {
    extra_components_.push_back(component);
  }
}

void LocalCheckpointEngine::BuildCompositeImage() {
  const std::vector<Checkpointable*>& components = Components();
  if (tracks_.size() != components.size()) {
    tracks_.assign(components.size(), ComponentTrack{});
  }

  const uint64_t image_id = store_.NextId();
  const uint64_t parent = policy_.delta_images ? parent_image_id_ : 0;
  CaptureStats stats;
  stats.image_id = image_id;
  stats.parent_id = parent;

  CheckpointImageBuilder builder;
  builder.SetDeltaHeader(image_id, parent);

  // Engine metadata: the saved instant plus the record and accounting a
  // restore target needs to continue exactly where the original paused.
  // Always a payload chunk — it changes at every capture by construction.
  ArchiveWriter meta;
  meta.Write<SimTime>(current_.saved_at);
  meta.Write<SimTime>(current_.request_time);
  meta.Write<SimTime>(current_.suspended_at);
  meta.Write<uint64_t>(current_.image_bytes);
  meta.Write<uint64_t>(residual_dirty_);
  meta.Write<uint64_t>(saver_.last_image_bytes());
  rng_.Save(&meta);
  builder.AddChunk("sim.time", meta.Take());
  ++stats.payload_chunks;

  for (size_t i = 0; i < components.size(); ++i) {
    const Checkpointable* component = components[i];
    ComponentTrack& track = tracks_[i];
    const uint64_t version = component->state_version();

    // Instrumented component whose mutation counter has not moved since the
    // parent capture: its serialized bytes are still those pinned by
    // track.crc, so skip SaveState entirely.
    if (parent != 0 && track.valid && version != 0 &&
        version == track.version) {
      builder.AddDeltaChunk(component->checkpoint_id(), track.crc);
      ++stats.delta_chunks;
      ++stats.version_skips;
      continue;
    }

    ArchiveWriter w;
    component->SaveState(&w);
    std::vector<uint8_t> payload = w.Take();
    const uint32_t crc = Crc32(payload);
    if (parent != 0 && track.valid && crc == track.crc) {
      // Uninstrumented (or over-bumped) component whose bytes came out
      // identical anyway: still a delta ref, just proven the expensive way.
      builder.AddDeltaChunk(component->checkpoint_id(), crc);
      ++stats.delta_chunks;
      ++stats.crc_fallbacks;
    } else {
      builder.AddChunk(component->checkpoint_id(), std::move(payload));
      ++stats.payload_chunks;
    }
    track.version = version;
    track.crc = crc;
    track.valid = true;
  }

  FinishCapture(&builder, stats);
}

void LocalCheckpointEngine::SnapshotComponents() {
  const std::vector<Checkpointable*>& components = Components();
  if (tracks_.size() != components.size()) {
    tracks_.assign(components.size(), ComponentTrack{});
  }
  assert(!pending_capture_);
  pool_.Acquire(&staged_);
  pending_parent_ = policy_.delta_images ? parent_image_id_ : 0;

  // All component bytes land back to back in one pinned buffer; after the
  // first few captures its capacity covers the steady state and the frozen
  // window performs no allocation for payload bytes.
  ArchiveWriter w(std::move(staged_.buffer));

  // Engine metadata, staged exactly as BuildCompositeImage writes it. Always
  // entry 0 and never a version skip.
  {
    StagedEntry meta;
    meta.id = "sim.time";
    meta.offset = w.size();
    w.Write<SimTime>(current_.saved_at);
    w.Write<SimTime>(current_.request_time);
    w.Write<SimTime>(current_.suspended_at);
    w.Write<uint64_t>(current_.image_bytes);
    w.Write<uint64_t>(residual_dirty_);
    w.Write<uint64_t>(saver_.last_image_bytes());
    rng_.Save(&w);
    meta.size = w.size() - meta.offset;
    staged_.entries.push_back(std::move(meta));
  }

  for (size_t i = 0; i < components.size(); ++i) {
    const Checkpointable* component = components[i];
    const ComponentTrack& track = tracks_[i];
    StagedEntry entry;
    entry.id = component->checkpoint_id();
    entry.version = component->state_version();
    if (pending_parent_ != 0 && track.valid && entry.version != 0 &&
        entry.version == track.version) {
      // Dirty tracking says the bytes are unchanged: stage nothing at all —
      // the background phase emits the delta ref from the tracked CRC.
      entry.version_skip = true;
      entry.parent_crc = track.crc;
    } else {
      entry.offset = w.size();
      component->SnapshotState(&w);
      entry.size = w.size() - entry.offset;
    }
    staged_.entries.push_back(std::move(entry));
  }

  staged_.buffer = w.Take();
  pending_capture_ = true;
}

void LocalCheckpointEngine::EnsureCaptureCommitted() {
  if (pending_capture_) {
    CommitPendingCapture();
  }
}

void LocalCheckpointEngine::CommitPendingCapture() {
  assert(pending_capture_);
  pending_capture_ = false;
  // A restore between freeze and commit would leave the staged bytes
  // describing pre-restore state; the pool generation catches that misuse.
  assert(staged_.generation == pool_.generation());

  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t parent = pending_parent_;
  CaptureStats stats;
  stats.image_id = store_.NextId();
  stats.parent_id = parent;

  CheckpointImageBuilder builder;
  builder.SetDeltaHeader(stats.image_id, parent);

  for (size_t i = 0; i < staged_.entries.size(); ++i) {
    const StagedEntry& entry = staged_.entries[i];
    if (i == 0) {
      // Engine metadata: always a payload chunk.
      const uint8_t* p = staged_.entry_data(entry);
      builder.AddChunk(entry.id, std::vector<uint8_t>(p, p + entry.size));
      ++stats.payload_chunks;
      continue;
    }
    ComponentTrack& track = tracks_[i - 1];
    if (entry.version_skip) {
      builder.AddDeltaChunk(entry.id, entry.parent_crc);
      ++stats.delta_chunks;
      ++stats.version_skips;
      continue;
    }
    const uint8_t* p = staged_.entry_data(entry);
    std::vector<uint8_t> payload(p, p + entry.size);
    const uint32_t crc = Crc32(payload);
    if (parent != 0 && track.valid && crc == track.crc) {
      builder.AddDeltaChunk(entry.id, crc);
      ++stats.delta_chunks;
      ++stats.crc_fallbacks;
    } else {
      builder.AddChunk(entry.id, std::move(payload));
      ++stats.payload_chunks;
    }
    track.version = entry.version;
    track.crc = crc;
    track.valid = true;
  }

  FinishCapture(&builder, stats);
  pool_.Release(&staged_);

  const double wall_us = WallMicros(t0, std::chrono::steady_clock::now());
  background_wall_us_hist_->Observe(wall_us);
  obs::TraceSession& trace = obs::TraceSession::Global();
  const obs::SpanId span =
      trace.BeginSpan(node_->name(), "ckpt.background", sim_->Now());
  trace.AddSpanArg(span, "wall_us", wall_us);
  trace.AddSpanArg(span, "serialized_bytes",
                   static_cast<double>(last_capture_stats_.serialized_bytes));
  trace.EndSpan(span, sim_->Now());
}

void LocalCheckpointEngine::FinishCapture(CheckpointImageBuilder* builder,
                                          CaptureStats stats) {
  const uint64_t image_id = stats.image_id;
  stats.total_chunks = builder->chunk_count();
  std::vector<uint8_t> bytes = builder->Serialize();
  stats.serialized_bytes = bytes.size();

  const bool self_contained = stats.delta_chunks == 0;
  const uint64_t stored_id = store_.Put(std::move(bytes));
  assert(stored_id == image_id);
  (void)stored_id;
  parent_image_id_ = image_id;
  last_capture_stats_ = stats;

  captures_counter_->Increment();
  serialized_bytes_counter_->Add(stats.serialized_bytes);
  payload_chunks_counter_->Add(stats.payload_chunks);
  delta_chunks_counter_->Add(stats.delta_chunks);
  obs::TraceSession::Global().Instant(
      node_->name(), "ckpt.capture", sim_->Now(),
      {{"image_id", static_cast<double>(stats.image_id)},
       {"parent_id", static_cast<double>(stats.parent_id)},
       {"payload_chunks", static_cast<double>(stats.payload_chunks)},
       {"delta_chunks", static_cast<double>(stats.delta_chunks)},
       {"version_skips", static_cast<double>(stats.version_skips)},
       {"serialized_bytes", static_cast<double>(stats.serialized_bytes)}});

  // Publish a self-contained image: holders (the time-travel tree, swap-out)
  // restore it without consulting this engine's store. Self-contained
  // captures share the store's buffer outright — no copy.
  last_image_ =
      self_contained
          ? store_.RawShared(image_id)
          : std::make_shared<const std::vector<uint8_t>>(
                store_.Materialize(image_id));

  // Spill-to-repository: persist the capture as emitted (delta against the
  // previously spilled generation when possible), falling back to a
  // self-contained materialization when the repository has no usable parent.
  // The batch API shares the store's buffer with the repository — the only
  // bytes copied on this path are the ones the segment file writes to disk.
  if (repo_ != nullptr) {
    uint64_t handle = 0;
    {
      std::unique_ptr<RepoWriteBatch> batch = repo_->BeginBatch();
      if (self_contained) {
        batch->Stage(store_.RawShared(image_id));
      } else if (repo_parent_handle_ != 0) {
        batch->Stage(store_.RawShared(image_id), repo_parent_handle_);
      } else {
        batch->Stage(store_.Materialize(image_id));
      }
      const CheckpointRepo::BatchCommitResult result =
          repo_->CommitBatch(std::move(batch));
      if (result.ok) {
        handle = result.handles[0];
      }
    }
    if (handle == 0) {
      // Legacy fallback: a rejected spill (e.g. the spilled parent was
      // retired and collected under us) degrades to self-contained.
      std::unique_ptr<RepoWriteBatch> retry = repo_->BeginBatch();
      retry->Stage(store_.Materialize(image_id));
      const CheckpointRepo::BatchCommitResult result =
          repo_->CommitBatch(std::move(retry));
      if (result.ok) {
        handle = result.handles[0];
      }
    }
    repo_parent_handle_ = handle;
    obs::TraceSession::Global().Instant(
        node_->name(), "repo.spill", sim_->Now(),
        {{"handle", static_cast<double>(handle)},
         {"delta", self_contained ? 0.0 : 1.0}});
  }

  if (!policy_.retain_image_chain) {
    store_.PruneExcept(image_id);
  }
}

void LocalCheckpointEngine::AttachRepository(CheckpointRepo* repo) {
  repo_ = repo;
  // The repository knows nothing of captures made before attach: the next
  // spill must be self-contained.
  repo_parent_handle_ = 0;
}

bool LocalCheckpointEngine::RestoreImage(const std::vector<uint8_t>& image_bytes) {
  assert(!in_progress_);
  CheckpointImageView view(image_bytes);
  if (!view.ok() || !view.HasChunk("sim.time")) {
    return false;
  }
  if (view.is_delta()) {
    // An unresolved delta image cannot prime a run: its unchanged chunks
    // live in the parent chain. Materialize through an ImageStore first.
    return false;
  }
  ArchiveReader meta(view.Chunk("sim.time"));
  const SimTime saved_at = meta.Read<SimTime>();
  const SimTime request_time = meta.Read<SimTime>();
  const SimTime suspended_at = meta.Read<SimTime>();
  const uint64_t recorded_image_bytes = meta.Read<uint64_t>();
  const uint64_t residual = meta.Read<uint64_t>();
  const uint64_t saver_bytes = meta.Read<uint64_t>();
  if (!meta.ok()) {
    return false;
  }

  // Rewind: every event the freshly booted experiment scheduled is dropped;
  // components re-arm their own events (at absolute saved deadlines) as
  // they restore, and the resume pass arms the frozen guest timers.
  sim_->ResetForRestore(saved_at);
  for (Checkpointable* component : Components()) {
    view.RestoreInto(*component);
  }
  rng_.Restore(meta);

  current_ = LocalCheckpointRecord{};
  current_.participant = node_->name();
  current_.request_time = request_time;
  current_.suspended_at = suspended_at;
  current_.saved_at = saved_at;
  current_.image_bytes = recorded_image_bytes;
  residual_dirty_ = residual;
  saver_.RestoreImageBytes(saver_bytes);
  last_image_ = std::make_shared<const std::vector<uint8_t>>(image_bytes);

  // Delta tracking is void after a restore: component state now reflects the
  // installed image, not the engine's last capture. The next checkpoint is
  // self-contained and restarts the chain. Any staging buffer acquired
  // before this point is poisoned too — staged bytes describe pre-restore
  // state and must never be committed (CommitPendingCapture asserts).
  parent_image_id_ = 0;
  tracks_.clear();
  repo_parent_handle_ = 0;  // the spill chain restarts with the image chain
  pool_.InvalidateAll();

  in_progress_ = true;
  hold_after_save_ = true;  // a restored run has no saved-callback to fire
  held_ = true;
  saved_cb_ = nullptr;
  restores_counter_->Increment();
  obs::TraceSession& trace = obs::TraceSession::Global();
  trace.Instant(node_->name(), "ckpt.restore_image", saved_at,
                {{"bytes", static_cast<double>(image_bytes.size())}});
  // The restored run sits frozen from the saved instant until ResumeRestored.
  frozen_span_ = trace.BeginSpan(node_->name(), "ckpt.frozen", saved_at);
  return true;
}

void LocalCheckpointEngine::ResumeRestored() { ResumeNow(); }

void LocalCheckpointEngine::OnStateSaved() {
  current_.saved_at = sim_->Now();
  current_.image_bytes = saver_.last_image_bytes() + node_->kernel().StateSizeBytes();
  image_bytes_counter_->Add(current_.image_bytes);
  obs::TraceSession& trace = obs::TraceSession::Global();
  trace.AddSpanArg(save_span_, "image_bytes", static_cast<double>(current_.image_bytes));
  trace.AddSpanArg(save_span_, "residual_dirty", static_cast<double>(residual_dirty_));
  trace.EndSpan(save_span_, sim_->Now());
  save_span_ = 0;
  // Capture point: inside the suspended window, after the memory image is
  // saved and before any resume. Two-phase capture only clones state into
  // staging buffers here and defers the serialize/diff/spill work to the
  // commit at resume; the synchronous baseline does everything now.
  {
    const auto t0 = std::chrono::steady_clock::now();
    if (policy_.async_capture) {
      SnapshotComponents();
    } else {
      BuildCompositeImage();
    }
    frozen_wall_us_hist_->Observe(
        WallMicros(t0, std::chrono::steady_clock::now()));
  }
  if (hold_after_save_) {
    held_ = true;
    if (saved_cb_) {
      auto cb = std::move(saved_cb_);
      saved_cb_ = nullptr;
      cb(current_);
    }
    return;
  }
  AtomicResume();
}

void LocalCheckpointEngine::ResumeAtLocal(SimTime local_time) {
  node_->clock().ScheduleAtLocal(local_time, [this] { ResumeNow(); });
}

void LocalCheckpointEngine::ResumeNow() {
  assert(held_);
  held_ = false;
  AtomicResume();
}

void LocalCheckpointEngine::AtomicResume() {
  // Mirror image of AtomicSuspend. With transparent time the virtual TSC is
  // compensated by exactly the downtime; otherwise the guest sees the jump.
  node_->domain().UnfreezeTime(/*compensate=*/policy_.transparent_time);
  node_->domain().ResumeRunstateAccounting();
  node_->kernel().ResumeInsideActivities();
  node_->kernel().block().Unquiesce();
  node_->experimental_nic()->Resume();
  node_->control_nic()->Resume();

  current_.resumed_at = sim_->Now();
  history_.push_back(current_);
  in_progress_ = false;
  obs::TraceSession::Global().EndSpan(frozen_span_, sim_->Now());
  frozen_span_ = 0;

  // Background half of a two-phase capture: the frozen window is over, so
  // serialize/diff/spill now (unless an accessor already forced it while the
  // engine was held). Runs before the saved callback fires so consumers of
  // last_image() in the callback observe the committed capture.
  EnsureCaptureCommitted();

  // Flush the captured image to the snapshot disk in the background; the
  // Dom0 CPU and disk activity is the post-checkpoint perturbation the
  // paper observes in Figures 5 and 6.
  saver_.BackgroundWriteback(current_.image_bytes, nullptr);

  if (!hold_after_save_ && saved_cb_) {
    // Consume the callback (the pattern FinishRound uses): a stale callback
    // left behind here could be re-fired into a dead frame by a later misuse
    // of the engine.
    auto cb = std::move(saved_cb_);
    saved_cb_ = nullptr;
    cb(history_.back());
  }
}

}  // namespace tcsim
