#include "src/checkpoint/local_checkpoint.h"

#include <cassert>
#include <utility>

namespace tcsim {

LocalCheckpointEngine::LocalCheckpointEngine(Simulator* sim, ExperimentNode* node,
                                             CheckpointPolicy policy)
    : sim_(sim),
      node_(node),
      policy_(policy),
      saver_(sim, &node->hypervisor(), policy.saver),
      rng_(0x9E3779B9u ^ node->id()) {
  node_->kernel().SetResumeTimerLatency(policy_.resume_timer_latency,
                                        0xC0FFEEull ^ node->id());
}

void LocalCheckpointEngine::CheckpointNow(
    std::function<void(const LocalCheckpointRecord&)> done) {
  assert(!in_progress_);
  in_progress_ = true;
  hold_after_save_ = false;
  saved_cb_ = std::move(done);
  current_ = LocalCheckpointRecord{};
  current_.participant = node_->name();
  current_.request_time = sim_->Now();
  BeginPreCopy(/*suspend_at_physical=*/-1);
}

void LocalCheckpointEngine::CheckpointAtLocal(
    SimTime local_time, std::function<void(const LocalCheckpointRecord&)> saved) {
  assert(!in_progress_);
  in_progress_ = true;
  hold_after_save_ = true;
  saved_cb_ = std::move(saved);
  current_ = LocalCheckpointRecord{};
  current_.participant = node_->name();
  current_.request_time = sim_->Now();
  BeginPreCopy(node_->clock().PhysicalAt(local_time));
}

void LocalCheckpointEngine::BeginPreCopy(SimTime suspend_at_physical) {
  if (policy_.live_precopy) {
    // For a scheduled checkpoint the suspend event fires at the appointed
    // instant; pre-copy merely shrinks the dirty set before it.
    saver_.PreCopy([this, suspend_at_physical](uint64_t /*residual*/) {
      if (suspend_at_physical < 0) {
        AtomicSuspend();
      }
    });
    if (suspend_at_physical >= 0) {
      sim_->ScheduleAt(suspend_at_physical, [this] { AtomicSuspend(); });
    }
    return;
  }
  // Non-live baseline: the whole dirty set is stop-copied during downtime.
  saver_.ResetImage();
  if (suspend_at_physical >= 0) {
    sim_->ScheduleAt(suspend_at_physical, [this] { AtomicSuspend(); });
  } else {
    AtomicSuspend();
  }
}

void LocalCheckpointEngine::AtomicSuspend() {
  assert(in_progress_);
  current_.suspended_at = sim_->Now();

  // The instant the suspend thread (outside the firewall) commits the
  // suspension: every inside activity stops, the time page freezes, the TSC
  // is restricted, runstate accounting pauses, and the NICs begin logging.
  node_->kernel().StopInsideActivities();
  if (policy_.transparent_time) {
    node_->domain().FreezeTime();
  }
  node_->domain().SuspendRunstateAccounting();
  node_->experimental_nic()->Suspend();
  node_->control_nic()->Suspend();

  residual_dirty_ = node_->domain().DirtyBytes();
  DrainAndSave();
}

void LocalCheckpointEngine::DrainAndSave() {
  // Block IRQ handlers run outside the firewall so queued disk requests can
  // complete before device connections are torn down.
  node_->kernel().block().Quiesce([this] {
    saver_.StopCopy(residual_dirty_, [this] {
      sim_->Schedule(policy_.device_serialize_time, [this] { OnStateSaved(); });
    });
  });
}

void LocalCheckpointEngine::OnStateSaved() {
  current_.saved_at = sim_->Now();
  current_.image_bytes = saver_.last_image_bytes() + node_->kernel().StateSizeBytes();
  if (hold_after_save_) {
    held_ = true;
    if (saved_cb_) {
      auto cb = std::move(saved_cb_);
      saved_cb_ = nullptr;
      cb(current_);
    }
    return;
  }
  AtomicResume();
}

void LocalCheckpointEngine::ResumeAtLocal(SimTime local_time) {
  node_->clock().ScheduleAtLocal(local_time, [this] { ResumeNow(); });
}

void LocalCheckpointEngine::ResumeNow() {
  assert(held_);
  held_ = false;
  AtomicResume();
}

void LocalCheckpointEngine::AtomicResume() {
  // Mirror image of AtomicSuspend. With transparent time the virtual TSC is
  // compensated by exactly the downtime; otherwise the guest sees the jump.
  node_->domain().UnfreezeTime(/*compensate=*/policy_.transparent_time);
  node_->domain().ResumeRunstateAccounting();
  node_->kernel().ResumeInsideActivities();
  node_->kernel().block().Unquiesce();
  node_->experimental_nic()->Resume();
  node_->control_nic()->Resume();

  current_.resumed_at = sim_->Now();
  history_.push_back(current_);
  in_progress_ = false;

  // Flush the captured image to the snapshot disk in the background; the
  // Dom0 CPU and disk activity is the post-checkpoint perturbation the
  // paper observes in Figures 5 and 6.
  saver_.BackgroundWriteback(current_.image_bytes, nullptr);

  if (!hold_after_save_ && saved_cb_) {
    // Consume the callback (the pattern FinishRound uses): a stale callback
    // left behind here could be re-fired into a dead frame by a later misuse
    // of the engine.
    auto cb = std::move(saved_cb_);
    saved_cb_ = nullptr;
    cb(history_.back());
  }
}

}  // namespace tcsim
