// HA quickstart: run a partitioned experiment under continuous
// micro-checkpointing, kill a partition mid-run, and verify — at the
// external-observer boundary — that the failover was invisible.
//
//   $ ./build/examples/ha_quickstart             # plain run, no HA
//   $ ./build/examples/ha_quickstart --ha        # micro-checkpoints + kill
//   $ ./build/examples/ha_quickstart --ha --mc-hz=100
//
// With --ha the run is driven by the MicroCheckpointer: every 1/N seconds of
// simulated time (--mc-hz, default 50) an epoch is captured with the
// two-phase pipeline, cross-partition output is buffered until its covering
// epoch commits, and a seeded fault schedule kills one partition mid-epoch.
// The FailoverManager restores the victim from the newest committed image
// and replays its lost inbound packets. The program then repeats the run
// fault-free and diffs the two external-observer traces: transparency means
// the diff is empty.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "src/emulab/external_observer.h"
#include "src/ha/fault_injector.h"
#include "src/ha/micro_checkpointer.h"
#include "src/net/topology.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

using namespace tcsim;

namespace {

struct RunOut {
  TraceLog trace;
  uint64_t epochs = 0;
  uint64_t released = 0;
  size_t recoveries = 0;
  bool recovered_ok = true;
};

RunOut Run(SimTime period, SimTime horizon, ha::FaultInjector* faults) {
  GeneratedTopologyParams params;
  params.hosts = 40;
  params.hosts_per_lan = 5;
  params.lans_per_zone = 2;  // 4 zones -> 4 partitions
  auto topo = GeneratedTopology::Build(params, /*partitions=*/4, /*workers=*/3);
  emulab::ExternalObserver observer;
  ha::MicroCheckpointPolicy policy;
  policy.period = period;
  ha::MicroCheckpointer mc(topo.get(), policy);
  mc.SetObserver(&observer);
  if (faults != nullptr) {
    mc.SetFaultInjector(faults);
  }
  mc.RunUntil(horizon);
  RunOut out;
  out.trace = observer.trace();
  out.epochs = mc.epochs_committed();
  out.released = mc.output_buffer()->released_total();
  out.recoveries = mc.failover()->recoveries().size();
  for (const ha::RecoveryRecord& rec : mc.failover()->recoveries()) {
    out.recovered_ok = out.recovered_ok && rec.ok;
    std::printf("  failover: partition %u killed at %.2f ms, restored to "
                "epoch %llu (%.2f ms), %zu deliveries replayed, %.2f ms wall\n",
                rec.partition, ToMilliseconds(rec.killed_at),
                static_cast<unsigned long long>(rec.epoch),
                ToMilliseconds(rec.restored_to), rec.replayed, rec.wall_ms);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool ha = false;
  uint64_t mc_hz = 50;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ha") == 0) {
      ha = true;
    } else if (std::strncmp(argv[i], "--mc-hz=", 8) == 0) {
      mc_hz = std::strtoull(argv[i] + 8, nullptr, 10);
    }
  }
  const SimTime period = mc_hz > 0 ? kSecond / static_cast<SimTime>(mc_hz)
                                   : 20 * kMillisecond;
  const SimTime horizon = 8 * period;

  if (!ha) {
    std::printf("plain run (pass --ha for micro-checkpointing + failover)\n");
    RunOut out = Run(period, horizon, nullptr);
    std::printf("done: %llu epochs committed, %llu packets released\n",
                static_cast<unsigned long long>(out.epochs),
                static_cast<unsigned long long>(out.released));
    return 0;
  }

  std::printf("HA run: %llu Hz micro-checkpoints (period %.1f ms), seeded "
              "partition kill mid-epoch\n",
              static_cast<unsigned long long>(mc_hz), ToMilliseconds(period));
  ha::FaultInjector faults(/*seed=*/7);
  faults.GenerateKillSchedule(/*partitions=*/4, /*count=*/1, horizon);
  RunOut faulty = Run(period, horizon, &faults);

  std::printf("fault-free reference run...\n");
  RunOut clean = Run(period, horizon, nullptr);

  const TraceDiff diff = faulty.trace.Compare(clean.trace);
  const bool transparent = diff.comparable && diff.max_time_delta == 0 &&
                           diff.max_value_delta == 0 && faulty.recovered_ok &&
                           faulty.recoveries == 1;
  std::printf("\nexternal observer: %zu records (faulty) vs %zu (clean): %s\n",
              faulty.trace.size(), clean.trace.size(),
              diff.Describe().c_str());
  std::printf(transparent
                  ? "transparent: the kill and restore were invisible at the "
                    "observer boundary.\n"
                  : "NOT transparent: the failover leaked to the observer.\n");
  return transparent ? 0 : 1;
}
