// Stateful swapping (Section 5): preemptively swap an experiment out without
// losing its run-time state, hold it swapped out while the testbed's
// resources serve someone else, then swap it back in — transparently.
//
//   $ ./build/examples/stateful_swap
//
// The demo runs a long-lived workload with in-memory and on-disk state, and
// an in-experiment event scheduled far in the future. It survives a
// 30-minute swap-out: the workload continues exactly where it stopped, the
// event fires at the right *experiment* time, and the guests never notice
// the gap.

#include <cstdio>
#include <functional>

#include "src/emulab/event_system.h"
#include "src/emulab/experiment.h"
#include "src/emulab/experiment_spec.h"
#include "src/emulab/testbed.h"
#include "src/sim/simulator.h"

using namespace tcsim;

int main() {
  Simulator sim;
  Testbed testbed(&sim, /*seed=*/7);

  ExperimentSpec spec("long-running-study");
  spec.AddNode("worker");
  Experiment* experiment = testbed.CreateExperiment(spec);
  experiment->SwapIn(/*golden_cached=*/true, nullptr);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  ExperimentNode* worker = experiment->node("worker");

  // Long-lived guest state: a counter ticking every 50 ms and a growing
  // on-disk dataset.
  uint64_t ticks = 0;
  uint64_t next_block = 50'000;
  std::function<void()> tick = [&] {
    ++ticks;
    worker->kernel().block().Write(next_block, {ticks}, nullptr);
    next_block += 1;
    worker->kernel().Usleep(50 * kMillisecond, tick);
  };
  tick();

  // An in-experiment event 60 s of *experiment time* ahead — it must fire on
  // schedule even though a swap-out will intervene.
  EventScheduler events(experiment, &testbed,
                        EventScheduler::Placement::kInsideExperiment);
  SimTime event_fired_vtime = -1;
  events.Schedule(60 * kSecond, "worker", [&](ExperimentNode& node) {
    event_fired_vtime = node.kernel().GetTimeOfDay();
  });
  const SimTime event_base_vtime = worker->kernel().GetTimeOfDay();
  events.Start();

  sim.RunUntil(sim.Now() + 20 * kSecond);
  const uint64_t ticks_before = ticks;
  const SimTime vtime_before = worker->kernel().GetTimeOfDay();
  std::printf("before swap-out: %llu ticks, guest time %.1f s, delta %llu MB\n",
              static_cast<unsigned long long>(ticks_before), ToSeconds(vtime_before),
              static_cast<unsigned long long>(experiment->PendingDeltaBytes() >> 20));

  // Swap out with eager pre-copy; the run-time state ships to the fs server.
  SwapRecord out_record;
  bool out = false;
  experiment->StatefulSwapOut(/*eager_precopy=*/true, [&](const SwapRecord& rec) {
    out_record = rec;
    out = true;
  });
  while (!out) {
    sim.RunUntil(sim.Now() + kSecond);
  }
  std::printf("swap-out took %.1f s, shipped %llu MB\n", ToSeconds(out_record.duration()),
              static_cast<unsigned long long>(out_record.bytes_transferred >> 20));

  // Thirty minutes pass: the hardware serves other experiments. The guest is
  // frozen; its ticks do not advance.
  sim.RunUntil(sim.Now() + 30 * kMinute);
  std::printf("30 wall-clock minutes swapped out: ticks still %llu\n",
              static_cast<unsigned long long>(ticks));

  // Swap back in lazily: guests resume as soon as memory images return; disk
  // blocks stream back in the background.
  SwapRecord in_record;
  bool in = false;
  experiment->StatefulSwapIn(/*lazy=*/true, [&](const SwapRecord& rec) {
    in_record = rec;
    in = true;
  });
  while (!in) {
    sim.RunUntil(sim.Now() + kSecond);
  }
  std::printf("swap-in took %.1f s (lazy)\n", ToSeconds(in_record.duration()));

  // Run on; the workload continues and the in-experiment event fires at the
  // right experiment time.
  sim.RunUntil(sim.Now() + 60 * kSecond);
  const SimTime vtime_after = worker->kernel().GetTimeOfDay();
  std::printf("\nafter resume: ticks %llu (was %llu), guest time %.1f s\n",
              static_cast<unsigned long long>(ticks),
              static_cast<unsigned long long>(ticks_before), ToSeconds(vtime_after));
  if (event_fired_vtime >= 0) {
    std::printf("scheduled event fired at experiment time %.2f s (scheduled for %.2f s)\n",
                ToSeconds(event_fired_vtime - event_base_vtime), 60.0);
  }
  std::printf("guest time advanced %.1f s while wall time advanced %.1f s:\n"
              "the swapped-out period is invisible to the experiment.\n",
              ToSeconds(vtime_after - vtime_before), 30.0 * 60 + 80);
  return ticks > ticks_before && event_fired_vtime >= 0 ? 0 : 1;
}
