// Quickstart: build a two-node Emulab experiment, run a TCP stream across a
// shaped link, and take a transparent distributed checkpoint in the middle
// of it — then verify, from inside the guest, that nothing happened.
//
//   $ ./build/examples/quickstart
//
// This walks the library's main concepts top-down:
//   Testbed          — the facility: node pool, control network, boss/fs
//   ExperimentSpec   — the "ns file": nodes, shaped links, LANs
//   Experiment       — mapped resources + swap lifecycle + checkpoint plane
//   IperfApp         — a workload measuring from inside the guests
//   DistributedCoordinator — "checkpoint at time t" over all participants

#include <cstdio>

#include "src/apps/iperf.h"
#include "src/emulab/experiment.h"
#include "src/emulab/experiment_spec.h"
#include "src/emulab/testbed.h"
#include "src/sim/simulator.h"

using namespace tcsim;

int main() {
  // The discrete-event simulator is the "physical world": every clock, wire,
  // disk and CPU below advances on it.
  Simulator sim;
  Testbed testbed(&sim, /*seed=*/2026);

  // Describe the experiment: two PCs joined by a shaped gigabit link with
  // 5 ms one-way delay. Emulab interposes a Dummynet delay node on the link;
  // its pipes hold the bandwidth-delay-product packets a checkpoint must
  // capture.
  ExperimentSpec spec("quickstart");
  spec.AddNode("client");
  spec.AddNode("server");
  spec.AddLink("client", "server", /*bandwidth_bps=*/1'000'000'000,
               /*delay=*/5 * kMillisecond);

  Experiment* experiment = testbed.CreateExperiment(spec);
  experiment->SwapIn(/*golden_cached=*/true, nullptr);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  std::printf("experiment swapped in: %zu nodes, %zu delay node(s)\n",
              experiment->nodes().size(), experiment->delay_node_count());

  // Start a 256 MiB TCP transfer and observe it from inside the guests.
  IperfApp::Params params;
  params.total_bytes = 256ull * 1024 * 1024;
  IperfApp iperf(experiment->node("client"), experiment->node("server"), params);
  bool transfer_done = false;
  iperf.Start([&] { transfer_done = true; });

  // One coordinated transparent checkpoint, scheduled 200 ms ahead so every
  // participant suspends when its own NTP-disciplined clock reads the same
  // instant.
  DistributedCheckpointRecord checkpoint;
  bool checkpointed = false;
  sim.Schedule(500 * kMillisecond, [&] {
    experiment->coordinator().CheckpointScheduled(
        200 * kMillisecond, [&](const DistributedCheckpointRecord& rec) {
          checkpoint = rec;
          checkpointed = true;
        });
  });

  while (!transfer_done && sim.Now() < 300 * kSecond) {
    sim.RunUntil(sim.Now() + kSecond);
  }

  std::printf("\ncheckpoint: %zu participants, suspend skew %.1f us, "
              "%.1f MB of images\n",
              checkpoint.locals.size(), ToMicroseconds(checkpoint.SuspendSkew()),
              static_cast<double>(checkpoint.TotalImageBytes()) / (1 << 20));
  for (const LocalCheckpointRecord& rec : checkpoint.locals) {
    // The barrier record is taken at save time; resume happens afterwards.
    std::printf("  %-28s capture %7.2f ms  image %8.2f MB\n", rec.participant.c_str(),
                ToMilliseconds(rec.saved_at - rec.suspended_at),
                static_cast<double>(rec.image_bytes) / (1 << 20));
  }

  std::printf("\nas observed from inside the system under test:\n");
  std::printf("  bytes delivered:     %llu (complete: %s)\n",
              static_cast<unsigned long long>(iperf.bytes_delivered()),
              transfer_done ? "yes" : "no");
  std::printf("  retransmissions:     %llu\n",
              static_cast<unsigned long long>(iperf.sender_stats().retransmits));
  std::printf("  duplicate ACKs:      %llu\n",
              static_cast<unsigned long long>(iperf.sender_stats().dup_acks_received));
  std::printf("  window changes:      %llu\n",
              static_cast<unsigned long long>(iperf.sender_stats().window_changes));
  std::printf("\nA transparent checkpoint leaves no trace the guests can see.\n");
  return transfer_done && checkpointed ? 0 : 1;
}
