// A realistic multi-node experiment: a BitTorrent swarm on a 100 Mbps LAN,
// checkpointed repeatedly mid-swarm (the Figure 7 scenario as an example).
//
//   $ ./build/examples/bittorrent_experiment
//
// Shows: LAN topologies, a peer-to-peer workload with many concurrent TCP
// connections, periodic distributed checkpoints, and how to read the
// experiment's health from inside (per-client throughput, TCP statistics).

#include <cstdio>

#include "src/apps/bittorrent.h"
#include "src/emulab/experiment.h"
#include "src/emulab/experiment_spec.h"
#include "src/emulab/testbed.h"
#include "src/sim/simulator.h"

using namespace tcsim;

int main() {
  Simulator sim;
  Testbed testbed(&sim, /*seed=*/11);

  ExperimentSpec spec("bt-swarm");
  spec.AddNode("seeder");
  spec.AddNode("c1");
  spec.AddNode("c2");
  spec.AddNode("c3");
  spec.AddLan("lan0", {"seeder", "c1", "c2", "c3"}, 100'000'000);
  Experiment* experiment = testbed.CreateExperiment(spec);
  experiment->SwapIn(true, nullptr);
  sim.RunUntil(sim.Now() + 10 * kSecond);

  BitTorrentSwarm::Params params;
  params.file_bytes = 256ull * 1024 * 1024;
  std::vector<ExperimentNode*> nodes = {experiment->node("seeder"), experiment->node("c1"),
                                        experiment->node("c2"), experiment->node("c3")};
  BitTorrentSwarm swarm(nodes, params);
  bool done = false;
  swarm.Start([&] { done = true; });
  std::printf("swarm started: %u pieces of %u KB to 3 clients\n", swarm.piece_count(),
              params.piece_bytes / 1024);

  // Checkpoint the whole closed world every 5 seconds while the swarm runs.
  std::function<void()> periodic = [&] {
    if (done) {
      return;
    }
    experiment->coordinator().CheckpointScheduled(
        500 * kMillisecond, [&](const DistributedCheckpointRecord& rec) {
          std::printf("  checkpoint: skew %6.1f us, %zu participants, %.1f MB images\n",
                      ToMicroseconds(rec.SuspendSkew()), rec.locals.size(),
                      static_cast<double>(rec.TotalImageBytes()) / (1 << 20));
          sim.Schedule(4500 * kMillisecond, periodic);
        });
  };
  sim.Schedule(5 * kSecond, periodic);

  while (!done && sim.Now() < 1800 * kSecond) {
    sim.RunUntil(sim.Now() + kSecond);
  }

  std::printf("\nswarm finished: %s\n", done ? "all clients complete" : "TIMED OUT");
  for (size_t i = 1; i < swarm.peer_count(); ++i) {
    BitTorrentPeer* peer = swarm.peer(i);
    std::printf("  client %zu: %zu pieces, finished at experiment time %.1f s\n", i,
                peer->pieces_held(), ToSeconds(peer->completion_time()));
  }

  // TCP health across all the checkpoints (expect: no spurious behaviour).
  uint64_t retx = 0;
  uint64_t dupacks = 0;
  for (ExperimentNode* node : nodes) {
    for (TcpConnection* conn : node->net().Connections()) {
      retx += conn->stats().retransmits;
      dupacks += conn->stats().dup_acks_received;
    }
  }
  std::printf("\nacross %zu checkpoints: %llu retransmissions, %llu duplicate ACKs\n",
              experiment->coordinator().history().size(),
              static_cast<unsigned long long>(retx),
              static_cast<unsigned long long>(dupacks));
  return done ? 0 : 1;
}
