// Time-travel debugging (Section 6): record a run with frequent transparent
// checkpoints, roll back to a point before a rare event, and replay — first
// deterministically (the event reproduces exactly), then with perturbation
// (the "non-determinism knob" turned up) to explore nearby executions.
//
//   $ ./build/examples/time_travel_debug
//
// The scenario: a workload whose counter occasionally lands on a "bug"
// value. Instead of re-running the whole experiment with debugging enabled,
// we time-travel to just before the occurrence and revisit it repeatedly
// under different conditions.

#include <cstdio>
#include <memory>

#include "src/timetravel/basic_run.h"
#include "src/timetravel/checkpoint_tree.h"

using namespace tcsim;

int main() {
  TimeTravelTree tree([] {
    BasicExperimentRun::Params params;
    params.seed = 2026;
    return std::make_unique<BasicExperimentRun>(params);
  });

  // 1. Record the original run: a checkpoint every 2 s for 20 s.
  std::printf("recording original run with checkpoints every 2 s...\n");
  const std::vector<int> original = tree.RecordOriginalRun(20 * kSecond, 2 * kSecond);
  std::printf("recorded %zu checkpoints:\n", original.size());
  for (int id : original) {
    const TreeNode& node = tree.tree()[id];
    std::printf("  ckpt %2d at t=%5.1f s  image %6.2f MB  digest %016llx\n", node.id,
                ToSeconds(node.time), static_cast<double>(node.image_bytes) / (1 << 20),
                static_cast<unsigned long long>(node.digest));
  }

  // 2. Verify the rollback mechanism: deterministic re-execution must
  //    reconstruct the identical state at every checkpoint.
  std::printf("\nverifying deterministic rollback at every checkpoint... ");
  bool all_ok = true;
  for (int id : original) {
    all_ok = all_ok && tree.VerifyDeterministicReplay(id);
  }
  std::printf("%s\n", all_ok ? "OK" : "MISMATCH");

  // 3. Roll back to the middle of the run and replay deterministically: the
  //    future re-unfolds identically (same digests).
  const int branch_point = original[original.size() / 2];
  std::printf("\nrolling back to ckpt %d (t=%.1f s), deterministic replay...\n",
              branch_point, ToSeconds(tree.tree()[branch_point].time));
  const std::vector<int> replay =
      tree.ReplayFrom(branch_point, 20 * kSecond, 2 * kSecond, /*perturb_seed=*/0);
  bool identical = true;
  for (size_t i = 0; i < replay.size(); ++i) {
    identical = identical &&
                tree.tree()[replay[i]].digest ==
                    tree.tree()[original[original.size() / 2 + 1 + i]].digest;
  }
  std::printf("replayed %zu checkpoints on branch %d — future %s the original\n",
              replay.size(), tree.tree()[replay.front()].branch,
              identical ? "IDENTICAL to" : "DIVERGED from");

  // 4. Now turn the non-determinism knob: three perturbed replays from the
  //    same instant explore different futures (each is a new branch).
  std::printf("\nperturbed replays from the same checkpoint:\n");
  for (uint64_t seed : {101ull, 202ull, 303ull}) {
    const std::vector<int> branch =
        tree.ReplayFrom(branch_point, 20 * kSecond, 2 * kSecond, seed);
    std::printf("  seed %3llu -> branch %d, final digest %016llx\n",
                static_cast<unsigned long long>(seed), tree.tree()[branch.front()].branch,
                static_cast<unsigned long long>(tree.tree()[branch.back()].digest));
  }

  // 5. The history is now a tree: one trunk, four branches.
  std::printf("\nexecution-history tree: %zu nodes across %d branches\n",
              tree.tree().size(), tree.branch_count());
  std::printf("estimated image-restore time for ckpt %d from the snapshot disk: %.2f s\n",
              branch_point,
              ToSeconds(tree.EstimateRestoreTime(branch_point, 70ull * 1024 * 1024)));
  return all_ok && identical ? 0 : 1;
}
