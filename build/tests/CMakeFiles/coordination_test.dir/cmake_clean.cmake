file(REMOVE_RECURSE
  "CMakeFiles/coordination_test.dir/coordination_test.cc.o"
  "CMakeFiles/coordination_test.dir/coordination_test.cc.o.d"
  "coordination_test"
  "coordination_test.pdb"
  "coordination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
