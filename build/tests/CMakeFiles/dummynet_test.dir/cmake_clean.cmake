file(REMOVE_RECURSE
  "CMakeFiles/dummynet_test.dir/dummynet_test.cc.o"
  "CMakeFiles/dummynet_test.dir/dummynet_test.cc.o.d"
  "dummynet_test"
  "dummynet_test.pdb"
  "dummynet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dummynet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
