# Empty compiler generated dependencies file for dummynet_test.
# This may be replaced when dependencies are built.
