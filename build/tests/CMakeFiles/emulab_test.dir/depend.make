# Empty dependencies file for emulab_test.
# This may be replaced when dependencies are built.
