file(REMOVE_RECURSE
  "CMakeFiles/emulab_test.dir/emulab_test.cc.o"
  "CMakeFiles/emulab_test.dir/emulab_test.cc.o.d"
  "emulab_test"
  "emulab_test.pdb"
  "emulab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emulab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
