# Empty dependencies file for timetravel_test.
# This may be replaced when dependencies are built.
