file(REMOVE_RECURSE
  "CMakeFiles/timetravel_test.dir/timetravel_test.cc.o"
  "CMakeFiles/timetravel_test.dir/timetravel_test.cc.o.d"
  "timetravel_test"
  "timetravel_test.pdb"
  "timetravel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timetravel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
