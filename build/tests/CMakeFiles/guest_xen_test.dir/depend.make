# Empty dependencies file for guest_xen_test.
# This may be replaced when dependencies are built.
