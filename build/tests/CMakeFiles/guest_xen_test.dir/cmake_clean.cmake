file(REMOVE_RECURSE
  "CMakeFiles/guest_xen_test.dir/guest_xen_test.cc.o"
  "CMakeFiles/guest_xen_test.dir/guest_xen_test.cc.o.d"
  "guest_xen_test"
  "guest_xen_test.pdb"
  "guest_xen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_xen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
