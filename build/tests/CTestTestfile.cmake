# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/clock_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/dummynet_test[1]_include.cmake")
include("/root/repo/build/tests/guest_xen_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/emulab_test[1]_include.cmake")
include("/root/repo/build/tests/timetravel_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/transparency_test[1]_include.cmake")
include("/root/repo/build/tests/coordination_test[1]_include.cmake")
include("/root/repo/build/tests/services_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/conservation_test[1]_include.cmake")
