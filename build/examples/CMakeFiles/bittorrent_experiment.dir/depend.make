# Empty dependencies file for bittorrent_experiment.
# This may be replaced when dependencies are built.
