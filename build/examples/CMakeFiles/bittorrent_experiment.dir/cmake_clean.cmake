file(REMOVE_RECURSE
  "CMakeFiles/bittorrent_experiment.dir/bittorrent_experiment.cpp.o"
  "CMakeFiles/bittorrent_experiment.dir/bittorrent_experiment.cpp.o.d"
  "bittorrent_experiment"
  "bittorrent_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bittorrent_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
