file(REMOVE_RECURSE
  "CMakeFiles/stateful_swap.dir/stateful_swap.cpp.o"
  "CMakeFiles/stateful_swap.dir/stateful_swap.cpp.o.d"
  "stateful_swap"
  "stateful_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stateful_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
