# Empty compiler generated dependencies file for stateful_swap.
# This may be replaced when dependencies are built.
