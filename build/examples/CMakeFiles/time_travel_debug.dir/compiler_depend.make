# Empty compiler generated dependencies file for time_travel_debug.
# This may be replaced when dependencies are built.
