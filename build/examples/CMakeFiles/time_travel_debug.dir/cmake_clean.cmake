file(REMOVE_RECURSE
  "CMakeFiles/time_travel_debug.dir/time_travel_debug.cpp.o"
  "CMakeFiles/time_travel_debug.dir/time_travel_debug.cpp.o.d"
  "time_travel_debug"
  "time_travel_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_travel_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
