file(REMOVE_RECURSE
  "CMakeFiles/fig7_bittorrent.dir/fig7_bittorrent.cc.o"
  "CMakeFiles/fig7_bittorrent.dir/fig7_bittorrent.cc.o.d"
  "fig7_bittorrent"
  "fig7_bittorrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_bittorrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
