# Empty dependencies file for fig7_bittorrent.
# This may be replaced when dependencies are built.
