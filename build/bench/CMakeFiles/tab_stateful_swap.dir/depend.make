# Empty dependencies file for tab_stateful_swap.
# This may be replaced when dependencies are built.
