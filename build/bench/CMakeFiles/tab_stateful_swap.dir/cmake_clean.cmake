file(REMOVE_RECURSE
  "CMakeFiles/tab_stateful_swap.dir/tab_stateful_swap.cc.o"
  "CMakeFiles/tab_stateful_swap.dir/tab_stateful_swap.cc.o.d"
  "tab_stateful_swap"
  "tab_stateful_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_stateful_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
