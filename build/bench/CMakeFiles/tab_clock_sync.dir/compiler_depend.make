# Empty compiler generated dependencies file for tab_clock_sync.
# This may be replaced when dependencies are built.
