file(REMOVE_RECURSE
  "CMakeFiles/tab_clock_sync.dir/tab_clock_sync.cc.o"
  "CMakeFiles/tab_clock_sync.dir/tab_clock_sync.cc.o.d"
  "tab_clock_sync"
  "tab_clock_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_clock_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
