file(REMOVE_RECURSE
  "CMakeFiles/fig9_background_transfer.dir/fig9_background_transfer.cc.o"
  "CMakeFiles/fig9_background_transfer.dir/fig9_background_transfer.cc.o.d"
  "fig9_background_transfer"
  "fig9_background_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_background_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
