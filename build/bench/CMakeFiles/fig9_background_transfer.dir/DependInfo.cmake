
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_background_transfer.cc" "bench/CMakeFiles/fig9_background_transfer.dir/fig9_background_transfer.cc.o" "gcc" "bench/CMakeFiles/fig9_background_transfer.dir/fig9_background_transfer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/tcsim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/emulab/CMakeFiles/tcsim_emulab.dir/DependInfo.cmake"
  "/root/repo/build/src/timetravel/CMakeFiles/tcsim_timetravel.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/tcsim_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/tcsim_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/xen/CMakeFiles/tcsim_xen.dir/DependInfo.cmake"
  "/root/repo/build/src/dummynet/CMakeFiles/tcsim_dummynet.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tcsim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/tcsim_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
