# Empty dependencies file for fig9_background_transfer.
# This may be replaced when dependencies are built.
