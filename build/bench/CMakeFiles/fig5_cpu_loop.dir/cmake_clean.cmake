file(REMOVE_RECURSE
  "CMakeFiles/fig5_cpu_loop.dir/fig5_cpu_loop.cc.o"
  "CMakeFiles/fig5_cpu_loop.dir/fig5_cpu_loop.cc.o.d"
  "fig5_cpu_loop"
  "fig5_cpu_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cpu_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
