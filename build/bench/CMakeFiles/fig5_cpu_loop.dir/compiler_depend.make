# Empty compiler generated dependencies file for fig5_cpu_loop.
# This may be replaced when dependencies are built.
