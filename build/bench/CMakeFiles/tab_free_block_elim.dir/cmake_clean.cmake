file(REMOVE_RECURSE
  "CMakeFiles/tab_free_block_elim.dir/tab_free_block_elim.cc.o"
  "CMakeFiles/tab_free_block_elim.dir/tab_free_block_elim.cc.o.d"
  "tab_free_block_elim"
  "tab_free_block_elim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_free_block_elim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
