# Empty compiler generated dependencies file for tab_free_block_elim.
# This may be replaced when dependencies are built.
