# Empty dependencies file for fig4_sleep_loop.
# This may be replaced when dependencies are built.
