file(REMOVE_RECURSE
  "CMakeFiles/fig4_sleep_loop.dir/fig4_sleep_loop.cc.o"
  "CMakeFiles/fig4_sleep_loop.dir/fig4_sleep_loop.cc.o.d"
  "fig4_sleep_loop"
  "fig4_sleep_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sleep_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
