file(REMOVE_RECURSE
  "CMakeFiles/fig8_cow_storage.dir/fig8_cow_storage.cc.o"
  "CMakeFiles/fig8_cow_storage.dir/fig8_cow_storage.cc.o.d"
  "fig8_cow_storage"
  "fig8_cow_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cow_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
