# Empty compiler generated dependencies file for fig8_cow_storage.
# This may be replaced when dependencies are built.
