# Empty dependencies file for fig6_iperf.
# This may be replaced when dependencies are built.
