file(REMOVE_RECURSE
  "CMakeFiles/fig6_iperf.dir/fig6_iperf.cc.o"
  "CMakeFiles/fig6_iperf.dir/fig6_iperf.cc.o.d"
  "fig6_iperf"
  "fig6_iperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_iperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
