file(REMOVE_RECURSE
  "CMakeFiles/tcsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/tcsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/tcsim_sim.dir/random.cc.o"
  "CMakeFiles/tcsim_sim.dir/random.cc.o.d"
  "CMakeFiles/tcsim_sim.dir/simulator.cc.o"
  "CMakeFiles/tcsim_sim.dir/simulator.cc.o.d"
  "CMakeFiles/tcsim_sim.dir/stats.cc.o"
  "CMakeFiles/tcsim_sim.dir/stats.cc.o.d"
  "CMakeFiles/tcsim_sim.dir/trace.cc.o"
  "CMakeFiles/tcsim_sim.dir/trace.cc.o.d"
  "libtcsim_sim.a"
  "libtcsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
