file(REMOVE_RECURSE
  "libtcsim_sim.a"
)
