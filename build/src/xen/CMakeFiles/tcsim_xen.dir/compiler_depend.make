# Empty compiler generated dependencies file for tcsim_xen.
# This may be replaced when dependencies are built.
