file(REMOVE_RECURSE
  "libtcsim_xen.a"
)
