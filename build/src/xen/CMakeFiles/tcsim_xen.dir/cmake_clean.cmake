file(REMOVE_RECURSE
  "CMakeFiles/tcsim_xen.dir/domain.cc.o"
  "CMakeFiles/tcsim_xen.dir/domain.cc.o.d"
  "CMakeFiles/tcsim_xen.dir/hypervisor.cc.o"
  "CMakeFiles/tcsim_xen.dir/hypervisor.cc.o.d"
  "libtcsim_xen.a"
  "libtcsim_xen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_xen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
