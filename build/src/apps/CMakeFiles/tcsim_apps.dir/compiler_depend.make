# Empty compiler generated dependencies file for tcsim_apps.
# This may be replaced when dependencies are built.
