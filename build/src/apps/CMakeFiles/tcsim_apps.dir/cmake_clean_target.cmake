file(REMOVE_RECURSE
  "libtcsim_apps.a"
)
