
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bittorrent.cc" "src/apps/CMakeFiles/tcsim_apps.dir/bittorrent.cc.o" "gcc" "src/apps/CMakeFiles/tcsim_apps.dir/bittorrent.cc.o.d"
  "/root/repo/src/apps/diskbench.cc" "src/apps/CMakeFiles/tcsim_apps.dir/diskbench.cc.o" "gcc" "src/apps/CMakeFiles/tcsim_apps.dir/diskbench.cc.o.d"
  "/root/repo/src/apps/iperf.cc" "src/apps/CMakeFiles/tcsim_apps.dir/iperf.cc.o" "gcc" "src/apps/CMakeFiles/tcsim_apps.dir/iperf.cc.o.d"
  "/root/repo/src/apps/microbench.cc" "src/apps/CMakeFiles/tcsim_apps.dir/microbench.cc.o" "gcc" "src/apps/CMakeFiles/tcsim_apps.dir/microbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/tcsim_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tcsim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xen/CMakeFiles/tcsim_xen.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/tcsim_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
