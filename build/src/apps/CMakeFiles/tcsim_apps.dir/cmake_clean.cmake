file(REMOVE_RECURSE
  "CMakeFiles/tcsim_apps.dir/bittorrent.cc.o"
  "CMakeFiles/tcsim_apps.dir/bittorrent.cc.o.d"
  "CMakeFiles/tcsim_apps.dir/diskbench.cc.o"
  "CMakeFiles/tcsim_apps.dir/diskbench.cc.o.d"
  "CMakeFiles/tcsim_apps.dir/iperf.cc.o"
  "CMakeFiles/tcsim_apps.dir/iperf.cc.o.d"
  "CMakeFiles/tcsim_apps.dir/microbench.cc.o"
  "CMakeFiles/tcsim_apps.dir/microbench.cc.o.d"
  "libtcsim_apps.a"
  "libtcsim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
