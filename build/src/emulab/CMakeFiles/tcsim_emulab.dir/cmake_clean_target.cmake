file(REMOVE_RECURSE
  "libtcsim_emulab.a"
)
