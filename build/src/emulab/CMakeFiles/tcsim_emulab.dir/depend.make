# Empty dependencies file for tcsim_emulab.
# This may be replaced when dependencies are built.
