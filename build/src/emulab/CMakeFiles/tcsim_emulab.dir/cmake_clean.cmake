file(REMOVE_RECURSE
  "CMakeFiles/tcsim_emulab.dir/event_system.cc.o"
  "CMakeFiles/tcsim_emulab.dir/event_system.cc.o.d"
  "CMakeFiles/tcsim_emulab.dir/experiment.cc.o"
  "CMakeFiles/tcsim_emulab.dir/experiment.cc.o.d"
  "CMakeFiles/tcsim_emulab.dir/idle_monitor.cc.o"
  "CMakeFiles/tcsim_emulab.dir/idle_monitor.cc.o.d"
  "CMakeFiles/tcsim_emulab.dir/services.cc.o"
  "CMakeFiles/tcsim_emulab.dir/services.cc.o.d"
  "CMakeFiles/tcsim_emulab.dir/testbed.cc.o"
  "CMakeFiles/tcsim_emulab.dir/testbed.cc.o.d"
  "libtcsim_emulab.a"
  "libtcsim_emulab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_emulab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
