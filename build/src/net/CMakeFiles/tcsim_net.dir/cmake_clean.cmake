file(REMOVE_RECURSE
  "CMakeFiles/tcsim_net.dir/lan.cc.o"
  "CMakeFiles/tcsim_net.dir/lan.cc.o.d"
  "CMakeFiles/tcsim_net.dir/nic.cc.o"
  "CMakeFiles/tcsim_net.dir/nic.cc.o.d"
  "CMakeFiles/tcsim_net.dir/stack.cc.o"
  "CMakeFiles/tcsim_net.dir/stack.cc.o.d"
  "CMakeFiles/tcsim_net.dir/tcp.cc.o"
  "CMakeFiles/tcsim_net.dir/tcp.cc.o.d"
  "CMakeFiles/tcsim_net.dir/wire.cc.o"
  "CMakeFiles/tcsim_net.dir/wire.cc.o.d"
  "libtcsim_net.a"
  "libtcsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
