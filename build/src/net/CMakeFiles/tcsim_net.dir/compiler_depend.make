# Empty compiler generated dependencies file for tcsim_net.
# This may be replaced when dependencies are built.
