file(REMOVE_RECURSE
  "libtcsim_net.a"
)
