
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dummynet/delay_node.cc" "src/dummynet/CMakeFiles/tcsim_dummynet.dir/delay_node.cc.o" "gcc" "src/dummynet/CMakeFiles/tcsim_dummynet.dir/delay_node.cc.o.d"
  "/root/repo/src/dummynet/pipe.cc" "src/dummynet/CMakeFiles/tcsim_dummynet.dir/pipe.cc.o" "gcc" "src/dummynet/CMakeFiles/tcsim_dummynet.dir/pipe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tcsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/tcsim_clock.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
