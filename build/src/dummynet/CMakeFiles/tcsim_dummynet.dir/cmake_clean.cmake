file(REMOVE_RECURSE
  "CMakeFiles/tcsim_dummynet.dir/delay_node.cc.o"
  "CMakeFiles/tcsim_dummynet.dir/delay_node.cc.o.d"
  "CMakeFiles/tcsim_dummynet.dir/pipe.cc.o"
  "CMakeFiles/tcsim_dummynet.dir/pipe.cc.o.d"
  "libtcsim_dummynet.a"
  "libtcsim_dummynet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_dummynet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
