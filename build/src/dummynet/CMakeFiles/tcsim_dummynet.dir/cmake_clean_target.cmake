file(REMOVE_RECURSE
  "libtcsim_dummynet.a"
)
