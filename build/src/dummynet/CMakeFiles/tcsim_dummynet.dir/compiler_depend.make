# Empty compiler generated dependencies file for tcsim_dummynet.
# This may be replaced when dependencies are built.
