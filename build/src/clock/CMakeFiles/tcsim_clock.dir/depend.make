# Empty dependencies file for tcsim_clock.
# This may be replaced when dependencies are built.
