file(REMOVE_RECURSE
  "libtcsim_clock.a"
)
