file(REMOVE_RECURSE
  "CMakeFiles/tcsim_clock.dir/hardware_clock.cc.o"
  "CMakeFiles/tcsim_clock.dir/hardware_clock.cc.o.d"
  "libtcsim_clock.a"
  "libtcsim_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
