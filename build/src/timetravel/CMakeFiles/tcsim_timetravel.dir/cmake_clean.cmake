file(REMOVE_RECURSE
  "CMakeFiles/tcsim_timetravel.dir/basic_run.cc.o"
  "CMakeFiles/tcsim_timetravel.dir/basic_run.cc.o.d"
  "CMakeFiles/tcsim_timetravel.dir/checkpoint_tree.cc.o"
  "CMakeFiles/tcsim_timetravel.dir/checkpoint_tree.cc.o.d"
  "CMakeFiles/tcsim_timetravel.dir/distributed_run.cc.o"
  "CMakeFiles/tcsim_timetravel.dir/distributed_run.cc.o.d"
  "libtcsim_timetravel.a"
  "libtcsim_timetravel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_timetravel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
