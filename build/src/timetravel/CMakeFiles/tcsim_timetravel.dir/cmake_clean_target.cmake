file(REMOVE_RECURSE
  "libtcsim_timetravel.a"
)
