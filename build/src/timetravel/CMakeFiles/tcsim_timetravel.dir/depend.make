# Empty dependencies file for tcsim_timetravel.
# This may be replaced when dependencies are built.
