# Empty dependencies file for tcsim_guest.
# This may be replaced when dependencies are built.
