
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/cpu_scheduler.cc" "src/guest/CMakeFiles/tcsim_guest.dir/cpu_scheduler.cc.o" "gcc" "src/guest/CMakeFiles/tcsim_guest.dir/cpu_scheduler.cc.o.d"
  "/root/repo/src/guest/kernel.cc" "src/guest/CMakeFiles/tcsim_guest.dir/kernel.cc.o" "gcc" "src/guest/CMakeFiles/tcsim_guest.dir/kernel.cc.o.d"
  "/root/repo/src/guest/node.cc" "src/guest/CMakeFiles/tcsim_guest.dir/node.cc.o" "gcc" "src/guest/CMakeFiles/tcsim_guest.dir/node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tcsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/tcsim_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tcsim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xen/CMakeFiles/tcsim_xen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
