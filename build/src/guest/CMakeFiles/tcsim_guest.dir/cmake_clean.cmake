file(REMOVE_RECURSE
  "CMakeFiles/tcsim_guest.dir/cpu_scheduler.cc.o"
  "CMakeFiles/tcsim_guest.dir/cpu_scheduler.cc.o.d"
  "CMakeFiles/tcsim_guest.dir/kernel.cc.o"
  "CMakeFiles/tcsim_guest.dir/kernel.cc.o.d"
  "CMakeFiles/tcsim_guest.dir/node.cc.o"
  "CMakeFiles/tcsim_guest.dir/node.cc.o.d"
  "libtcsim_guest.a"
  "libtcsim_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
