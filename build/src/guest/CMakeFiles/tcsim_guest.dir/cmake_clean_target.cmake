file(REMOVE_RECURSE
  "libtcsim_guest.a"
)
