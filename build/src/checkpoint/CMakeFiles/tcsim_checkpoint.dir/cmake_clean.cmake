file(REMOVE_RECURSE
  "CMakeFiles/tcsim_checkpoint.dir/coordinator.cc.o"
  "CMakeFiles/tcsim_checkpoint.dir/coordinator.cc.o.d"
  "CMakeFiles/tcsim_checkpoint.dir/delay_node_participant.cc.o"
  "CMakeFiles/tcsim_checkpoint.dir/delay_node_participant.cc.o.d"
  "CMakeFiles/tcsim_checkpoint.dir/local_checkpoint.cc.o"
  "CMakeFiles/tcsim_checkpoint.dir/local_checkpoint.cc.o.d"
  "CMakeFiles/tcsim_checkpoint.dir/notification_bus.cc.o"
  "CMakeFiles/tcsim_checkpoint.dir/notification_bus.cc.o.d"
  "libtcsim_checkpoint.a"
  "libtcsim_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
