
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checkpoint/coordinator.cc" "src/checkpoint/CMakeFiles/tcsim_checkpoint.dir/coordinator.cc.o" "gcc" "src/checkpoint/CMakeFiles/tcsim_checkpoint.dir/coordinator.cc.o.d"
  "/root/repo/src/checkpoint/delay_node_participant.cc" "src/checkpoint/CMakeFiles/tcsim_checkpoint.dir/delay_node_participant.cc.o" "gcc" "src/checkpoint/CMakeFiles/tcsim_checkpoint.dir/delay_node_participant.cc.o.d"
  "/root/repo/src/checkpoint/local_checkpoint.cc" "src/checkpoint/CMakeFiles/tcsim_checkpoint.dir/local_checkpoint.cc.o" "gcc" "src/checkpoint/CMakeFiles/tcsim_checkpoint.dir/local_checkpoint.cc.o.d"
  "/root/repo/src/checkpoint/notification_bus.cc" "src/checkpoint/CMakeFiles/tcsim_checkpoint.dir/notification_bus.cc.o" "gcc" "src/checkpoint/CMakeFiles/tcsim_checkpoint.dir/notification_bus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/tcsim_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/dummynet/CMakeFiles/tcsim_dummynet.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tcsim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xen/CMakeFiles/tcsim_xen.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/tcsim_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
