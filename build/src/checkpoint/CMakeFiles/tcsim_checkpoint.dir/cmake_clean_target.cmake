file(REMOVE_RECURSE
  "libtcsim_checkpoint.a"
)
