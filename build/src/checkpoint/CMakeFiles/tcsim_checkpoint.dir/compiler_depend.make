# Empty compiler generated dependencies file for tcsim_checkpoint.
# This may be replaced when dependencies are built.
