file(REMOVE_RECURSE
  "CMakeFiles/tcsim_storage.dir/branch_store.cc.o"
  "CMakeFiles/tcsim_storage.dir/branch_store.cc.o.d"
  "CMakeFiles/tcsim_storage.dir/disk.cc.o"
  "CMakeFiles/tcsim_storage.dir/disk.cc.o.d"
  "CMakeFiles/tcsim_storage.dir/ext3_model.cc.o"
  "CMakeFiles/tcsim_storage.dir/ext3_model.cc.o.d"
  "CMakeFiles/tcsim_storage.dir/mirror_volume.cc.o"
  "CMakeFiles/tcsim_storage.dir/mirror_volume.cc.o.d"
  "libtcsim_storage.a"
  "libtcsim_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
