# Empty dependencies file for tcsim_storage.
# This may be replaced when dependencies are built.
