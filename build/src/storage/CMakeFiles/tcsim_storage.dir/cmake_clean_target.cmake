file(REMOVE_RECURSE
  "libtcsim_storage.a"
)
