// Figure 7: a four-node BitTorrent experiment under periodic checkpointing.
//
// Paper setup: one seeder + three clients on a 100 Mbps LAN all downloading
// a 3 GB file; checkpointing starts 70 s into the run (after BitTorrent
// reaches steady state), takes a checkpoint every 5 s for 100 s, then stops.
// Paper results: each client averages ~1 MB/s from the seeder; every
// checkpoint causes a small dip, but repeated checkpointing does not move
// the obvious "center line" of the throughput plot.
//
// This reproduction scales the file to 768 MB by default (pass a byte count
// as argv[1] for the full 3 GB run) and scales the checkpoint window
// accordingly; the shape — steady center line, small dips — is the result.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/apps/bittorrent.h"
#include "src/emulab/experiment.h"
#include "src/emulab/experiment_spec.h"
#include "src/emulab/testbed.h"
#include "src/sim/simulator.h"

namespace tcsim {
namespace {

int Run(uint64_t file_bytes, bool audit) {
  PrintHeader("Figure 7", "four-node BitTorrent under periodic checkpointing");

  Simulator sim;
  Testbed testbed(&sim, 42);
  ExperimentSpec spec("bt");
  spec.AddNode("seeder");
  spec.AddNode("c1");
  spec.AddNode("c2");
  spec.AddNode("c3");
  spec.AddLan("lan0", {"seeder", "c1", "c2", "c3"}, 100'000'000);
  Experiment* experiment = testbed.CreateExperiment(spec);
  experiment->SwapIn(true, nullptr);
  sim.RunUntil(sim.Now() + 10 * kSecond);

  std::unique_ptr<InvariantRegistry> reg;
  if (audit) {
    reg = std::make_unique<InvariantRegistry>(&sim);
    experiment->RegisterInvariants(reg.get());
    reg->StartPeriodic(50 * kMillisecond);
  }

  BitTorrentSwarm::Params params;
  params.file_bytes = file_bytes;
  std::vector<ExperimentNode*> nodes = {experiment->node("seeder"), experiment->node("c1"),
                                        experiment->node("c2"), experiment->node("c3")};
  BitTorrentSwarm swarm(nodes, params);
  bool done = false;
  swarm.Start([&] { done = true; });

  // Let the swarm reach steady state, then checkpoint every 5 s for a
  // window, then stop (scaled version of the paper's 70 s / 100 s / 100 s).
  const SimTime start = sim.Now();
  const SimTime ckpt_begin = 15 * kSecond;
  const SimTime ckpt_window = 30 * kSecond;
  std::function<void()> periodic = [&] {
    if (done || sim.Now() - start > ckpt_begin + ckpt_window) {
      return;
    }
    experiment->coordinator().CheckpointScheduled(
        500 * kMillisecond, [&](const DistributedCheckpointRecord&) {
          sim.Schedule(4500 * kMillisecond, periodic);
        });
  };
  sim.Schedule(ckpt_begin, periodic);

  while (!done && sim.Now() < start + 3600 * kSecond) {
    sim.RunUntil(sim.Now() + kSecond);
  }

  PrintSection("download results");
  for (size_t i = 1; i < swarm.peer_count(); ++i) {
    BitTorrentPeer* peer = swarm.peer(i);
    {
      char label[64];
      std::snprintf(label, sizeof label, "client%zu.finished_at", i);
      BenchReport::Instance().RecordMetric(label, false, 0,
                                           ToSeconds(peer->completion_time()), "s");
    }
    if (!JsonQuiet()) {
      std::printf("client %zu: complete=%d pieces=%zu finished at t=%.1f s (virtual)\n",
                  i, peer->complete(), peer->pieces_held(),
                  ToSeconds(peer->completion_time()));
    }
  }
  PrintValue("checkpoints taken",
             static_cast<double>(experiment->coordinator().history().size()), "");

  PrintSection("seeder outgoing throughput per client (the figure's 3 lines)");
  for (size_t i = 1; i < swarm.peer_count(); ++i) {
    const ThroughputMeter& meter = swarm.seeder_upload_meter(nodes[i]->id());
    const TimeSeries series =
        const_cast<ThroughputMeter&>(meter).Bucketize();
    // Center line: mean throughput in the checkpointed window vs outside it.
    const SimTime w0 = start + ckpt_begin;
    const SimTime w1 = w0 + ckpt_window;
    const double inside = series.MeanInWindow(w0, w1);
    const double outside = series.MeanInWindow(start, w0);
    {
      char label[64];
      std::snprintf(label, sizeof label, "client%zu.mbs_before_ckpts", i);
      BenchReport::Instance().RecordMetric(label, false, 0, outside, "MB/s");
      std::snprintf(label, sizeof label, "client%zu.mbs_during_ckpts", i);
      BenchReport::Instance().RecordMetric(label, false, 0, inside, "MB/s");
    }
    if (!JsonQuiet()) {
      std::printf("client %zu: mean MB/s before ckpts %.3f, during ckpts %.3f\n", i,
                  outside, inside);
    }
  }
  PrintNote("paper: ~1 MB/s per client on their hardware; shape criterion is that");
  PrintNote("the center line during the checkpointed window matches the line outside it.");

  const TimeSeries c1_series = swarm.seeder_upload_meter(nodes[1]->id()).Bucketize();
  PrintSeries("fig7.seeder_to_client1_MBps_1s_buckets", c1_series, 50);

  PrintDigest(sim);
  return FinishAudit(reg.get());
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "fig7_bittorrent");
  uint64_t file_bytes = 768ull * 1024 * 1024;
  if (argc > 1 && argv[1][0] != '-') {
    file_bytes = std::strtoull(argv[1], nullptr, 10);
  }
  return bm.Finish(tcsim::Run(file_bytes, tcsim::HasFlag(argc, argv, "--audit")));
}
