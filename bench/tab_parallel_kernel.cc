// Parallel event kernel: events/sec and checkpoint-epoch cost vs partition
// count, with the digest-oracle identity check inline.
//
// For each partition count p in the sweep, the same generated topology (100
// hosts by default, fat-tree or multi-LAN zones) is run twice: once on the
// sequential oracle (workers = 0) and once on the worker pool (workers =
// p - 1, i.e. p-way including the coordinator). Both runs checkpoint at every
// epoch barrier. The bench FAILS (non-zero exit) unless, for every p, the
// parallel run's merged event digest AND the fold over all captured
// checkpoint images are bit-identical to the oracle's — the acceptance
// criterion of the partitioned kernel.
//
//   $ ./build/bench/tab_parallel_kernel [--json] [--hosts=N] [--partitions=P]
//        [--shape=fattree|zones] [--epoch-ms=E] [--sim-ms=T]
//
// Speedup is reported against the p=1 sequential baseline. On a single
// hardware thread the honest number is <= 1; the digest identity is the
// machine-independent claim.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/ledger_util.h"
#include "src/checkpoint/epoch_coordinator.h"
#include "src/net/topology.h"
#include "src/repo/checkpoint_repo.h"
#include "src/sim/digest.h"
#include "src/sim/scheduler.h"
#include "src/sim/time.h"

using namespace tcsim;

namespace {

struct RunResult {
  uint64_t event_digest = 0;
  uint64_t behavior_digest = 0;
  uint64_t captures_digest = 0;
  uint64_t total_events = 0;
  uint64_t cross_events = 0;
  uint64_t windows = 0;
  uint64_t guard_violations = 0;
  uint64_t epoch_image_bytes = 0;  // per epoch (all partitions)
  double epoch_wall_ms = 0;        // mean capture cost per epoch
  size_t partitions = 0;
  size_t epochs = 0;
  double wall_s = 0;
  double events_per_sec = 0;
};

RunResult RunOnce(const GeneratedTopologyParams& params, uint32_t partitions,
                  uint32_t workers, SimTime horizon, SimTime epoch_period) {
  auto topo = GeneratedTopology::Build(params, partitions, workers);
  PartitionEpochCoordinator epochs(
      topo->scheduler(), epoch_period,
      [&topo](Partition* p) { return topo->CapturePartitionImage(p->id()); });

  const auto start = std::chrono::steady_clock::now();
  epochs.RunUntil(horizon);
  const auto stop = std::chrono::steady_clock::now();

  RunResult r;
  r.event_digest = topo->EventDigest();
  r.behavior_digest = topo->BehaviorDigest();
  r.captures_digest = epochs.CapturesDigest();
  r.total_events = topo->TotalEvents();
  r.cross_events = topo->scheduler()->stats().cross_events;
  r.windows = topo->scheduler()->stats().windows;
  r.guard_violations = topo->scheduler()->GuardViolations();
  r.partitions = topo->partition_count();
  r.epochs = epochs.history().size();
  for (const auto& rec : epochs.history()) {
    r.epoch_image_bytes += rec.image_bytes;
    r.epoch_wall_ms += rec.wall_ms;
  }
  if (r.epochs > 0) {
    r.epoch_image_bytes /= r.epochs;
    r.epoch_wall_ms /= static_cast<double>(r.epochs);
  }
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  r.events_per_sec =
      r.wall_s > 0 ? static_cast<double>(r.total_events) / r.wall_s : 0;
  return r;
}

uint64_t FlagU64(int argc, char** argv, const char* flag, uint64_t fallback) {
  const char* v = FlagValue(argc, argv, flag);
  return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10)
                                      : fallback;
}

// Epoch spill cost: the same checkpointed run with a durable repository
// attached to the coordinator — every epoch's captures group-commit through
// the shared write batch while the workers stage concurrently. Run in both
// capture modes: synchronous (serialize + commit inside the barrier) and
// two-phase (freeze only; serialize/commit on the background thread). The
// captures digest must match between them.
struct SpillRunResult {
  size_t epochs = 0;
  uint64_t epoch_image_bytes = 0;  // mean per epoch
  double capture_ms = 0;           // mean per epoch
  double spill_ms = 0;             // mean per epoch (the group commit)
  double frozen_ms = 0;            // mean barrier occupancy per epoch
  uint64_t captures_digest = 0;
  bool spill_ok = true;            // every epoch committed
  bool reopen_ok = false;          // a fresh process saw identical bytes
  LedgerAttribution ledger;
};

SpillRunResult RunSpill(GeneratedTopologyParams params, uint32_t hosts,
                        bool async, SimTime horizon, SimTime epoch_period) {
  namespace fs = std::filesystem;
  params.hosts = hosts;
  const fs::path dir = fs::temp_directory_path() /
                       ("tcsim_bench_parallel_spill_" + std::to_string(hosts) +
                        (async ? "_async" : "_sync"));
  std::error_code ec;
  fs::remove_all(dir, ec);
  std::string err;
  SpillRunResult r;
  std::unique_ptr<CheckpointRepo> repo =
      CheckpointRepo::Open(dir.string(), RepoOptions{}, &err);
  if (repo == nullptr) {
    r.spill_ok = false;
    return r;
  }
  auto topo = GeneratedTopology::Build(params, /*partitions=*/4, /*workers=*/3);
  PartitionEpochCoordinator epochs(
      topo->scheduler(), epoch_period,
      [&topo](Partition* p) { return topo->CapturePartitionImage(p->id()); });
  if (async) {
    epochs.EnableAsyncCapture([&topo](Partition* p, StagedCapture* out) {
      topo->SnapshotPartition(p->id(), out);
    });
  }
  epochs.AttachRepository(repo.get());
  obs::EpochLedger::Global().Enable();
  epochs.RunUntil(horizon);
  r.ledger = AnalyzeLedgerRun();

  r.epochs = epochs.history().size();
  for (const auto& rec : epochs.history()) {
    r.epoch_image_bytes += rec.image_bytes;
    r.capture_ms += rec.wall_ms;
    r.spill_ms += rec.spill_wall_ms;
    r.frozen_ms += async ? rec.frozen_wall_ms + rec.commit_wait_ms
                         : rec.wall_ms + rec.spill_wall_ms;
    r.spill_ok = r.spill_ok && rec.spill_ok;
  }
  if (r.epochs > 0) {
    r.epoch_image_bytes /= r.epochs;
    r.capture_ms /= static_cast<double>(r.epochs);
    r.spill_ms /= static_cast<double>(r.epochs);
    r.frozen_ms /= static_cast<double>(r.epochs);
  }
  r.captures_digest = epochs.CapturesDigest();

  auto fold = [](CheckpointRepo* c) {
    Fnv1aDigest folded;
    for (const uint64_t handle : c->LiveHandles()) {
      const std::vector<uint8_t> out = c->Materialize(handle);
      folded.MixBytes(out.data(), out.size());
    }
    return folded.value();
  };
  const uint64_t before = fold(repo.get());
  repo.reset();
  std::unique_ptr<CheckpointRepo> reopened =
      CheckpointRepo::Open(dir.string(), RepoOptions{}, &err);
  r.reopen_ok = reopened != nullptr && fold(reopened.get()) == before;
  reopened.reset();
  fs::remove_all(dir, ec);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchMain bm(argc, argv, "tab_parallel_kernel");

  GeneratedTopologyParams params;
  params.hosts = static_cast<uint32_t>(FlagU64(argc, argv, "--hosts", 100));
  const char* shape = FlagValue(argc, argv, "--shape");
  if (shape != nullptr && std::string(shape) == "zones") {
    params.shape = TopologyShape::kMultiLanZones;
  }
  const uint32_t max_partitions =
      static_cast<uint32_t>(FlagU64(argc, argv, "--partitions", 4));
  const SimTime horizon =
      static_cast<SimTime>(FlagU64(argc, argv, "--sim-ms", 200)) * kMillisecond;
  const SimTime epoch_period =
      static_cast<SimTime>(FlagU64(argc, argv, "--epoch-ms", 50)) * kMillisecond;

  std::vector<uint32_t> sweep;
  for (uint32_t p = 1; p <= max_partitions; p *= 2) {
    sweep.push_back(p);
  }
  if (sweep.back() != max_partitions) {
    sweep.push_back(max_partitions);
  }

  PrintHeader("tab_parallel_kernel",
              "partitioned kernel: digest oracle, events/sec and "
              "checkpoint-epoch cost vs partition count");

  bool ok = true;
  double baseline_eps = 0;
  std::string rows = "[\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const uint32_t p = sweep[i];
    const RunResult oracle = RunOnce(params, p, /*workers=*/0, horizon,
                                     epoch_period);
    const RunResult parallel = RunOnce(params, p, /*workers=*/p - 1, horizon,
                                       epoch_period);

    const bool digest_ok = oracle.event_digest == parallel.event_digest &&
                           oracle.captures_digest == parallel.captures_digest &&
                           oracle.behavior_digest == parallel.behavior_digest &&
                           oracle.total_events == parallel.total_events;
    const bool guards_ok =
        oracle.guard_violations == 0 && parallel.guard_violations == 0;
    ok = ok && digest_ok && guards_ok;
    if (p == 1) {
      baseline_eps = oracle.events_per_sec;
    }
    const double speedup =
        baseline_eps > 0 ? parallel.events_per_sec / baseline_eps : 0;

    char section[96];
    std::snprintf(section, sizeof section, "partitions = %u (%zu effective)",
                  p, oracle.partitions);
    PrintSection(section);
    PrintValue("events", static_cast<double>(oracle.total_events), "");
    PrintValue("cross-partition events",
               static_cast<double>(oracle.cross_events), "");
    PrintValue("conservative windows", static_cast<double>(oracle.windows), "");
    PrintValue("oracle events/sec", oracle.events_per_sec, "ev/s");
    PrintValue("parallel events/sec", parallel.events_per_sec, "ev/s");
    PrintValue("speedup vs p=1 sequential", speedup, "x");
    PrintValue("checkpoint epochs", static_cast<double>(parallel.epochs), "");
    PrintValue("epoch image bytes",
               static_cast<double>(parallel.epoch_image_bytes), "B");
    PrintValue("epoch capture cost (parallel)", parallel.epoch_wall_ms, "ms");
    PrintValue("epoch capture cost (oracle)", oracle.epoch_wall_ms, "ms");
    PrintNote(digest_ok ? "digest merge bit-identical to sequential oracle"
                        : "DIGEST MISMATCH vs sequential oracle");
    if (!guards_ok) {
      PrintNote("QUEUE GUARD VIOLATIONS detected");
    }
    BenchReport::Instance().RecordDigest(parallel.event_digest);

    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"partitions\": %u, \"effective\": %zu, \"events\": %llu, "
        "\"cross_events\": %llu, \"windows\": %llu, "
        "\"oracle_events_per_sec\": %.0f, \"parallel_events_per_sec\": %.0f, "
        "\"speedup\": %.3f, \"epochs\": %zu, \"epoch_image_bytes\": %llu, "
        "\"epoch_wall_ms\": %.3f, \"digest_ok\": %s}%s\n",
        p, oracle.partitions, static_cast<unsigned long long>(oracle.total_events),
        static_cast<unsigned long long>(oracle.cross_events),
        static_cast<unsigned long long>(oracle.windows),
        oracle.events_per_sec, parallel.events_per_sec, speedup,
        parallel.epochs, static_cast<unsigned long long>(parallel.epoch_image_bytes),
        parallel.epoch_wall_ms, digest_ok ? "true" : "false",
        i + 1 < sweep.size() ? "," : "");
    rows += buf;
  }
  rows += "  ]";
  BenchReport::Instance().AddExtra("partition_sweep", rows);
  BenchReport::Instance().AddExtra("digest_oracle_ok", ok ? "true" : "false");

  // Epoch spill cost at 100 and 1000 hosts: 4 partitions, 3 workers, one
  // group commit per epoch, gated by a byte-identical cross-process reopen.
  // Both capture modes run; the two-phase run's captures digest must match
  // the synchronous one's (async_capture_ok).
  bool async_ok = true;
  bool coverage_ok = true;
  double min_coverage = 1.0;
  std::string spill_rows = "[\n";
  const uint32_t spill_hosts[] = {100, 1000};
  for (size_t i = 0; i < 2; ++i) {
    const SpillRunResult spill = RunSpill(params, spill_hosts[i],
                                          /*async=*/false, horizon,
                                          epoch_period);
    const SpillRunResult aspill = RunSpill(params, spill_hosts[i],
                                           /*async=*/true, horizon,
                                           epoch_period);
    const bool mode_ok = spill.captures_digest == aspill.captures_digest &&
                         spill.epochs == aspill.epochs;
    async_ok = async_ok && mode_ok && aspill.spill_ok && aspill.reopen_ok;
    ok = ok && spill.spill_ok && spill.reopen_ok && mode_ok;

    char section[64];
    std::snprintf(section, sizeof section, "epoch spill, %u hosts",
                  spill_hosts[i]);
    PrintSection(section);
    PrintValue("epochs spilled", static_cast<double>(spill.epochs), "");
    PrintValue("epoch image bytes",
               static_cast<double>(spill.epoch_image_bytes), "B");
    PrintValue("epoch capture cost", spill.capture_ms, "ms");
    PrintValue("epoch spill cost (group commit)", spill.spill_ms, "ms");
    PrintValue("frozen window, sync", spill.frozen_ms, "ms");
    PrintValue("frozen window, two-phase", aspill.frozen_ms, "ms");
    PrintValue("ledger coverage (two-phase, min epoch)",
               aspill.ledger.min_coverage, "");
    PrintValue("straggler slack (mean)", aspill.ledger.straggler_slack_ms,
               "ms");
    const bool cover_ok = spill.ledger.ok && aspill.ledger.ok &&
                          spill.ledger.min_coverage >= 0.95 &&
                          aspill.ledger.min_coverage >= 0.95;
    coverage_ok = coverage_ok && cover_ok;
    min_coverage = std::min(
        {min_coverage, spill.ledger.min_coverage, aspill.ledger.min_coverage});
    PrintNote(spill.spill_ok && spill.reopen_ok
                  ? "all epochs committed; reopen byte-identical"
                  : "EPOCH SPILL FAILED OR DIVERGED ON REOPEN");
    PrintNote(mode_ok ? "two-phase captures digest matches synchronous"
                      : "ASYNC CAPTURE DIVERGED from synchronous");

    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"hosts\": %u, \"epochs\": %zu, \"epoch_image_bytes\": %llu, "
        "\"capture_ms\": %.3f, \"spill_ms\": %.3f, \"sync_frozen_ms\": %.3f, "
        "\"async_frozen_ms\": %.3f, \"spill_ok\": %s, \"reopen_ok\": %s, "
        "\"async_capture_ok\": %s, \"ledger_coverage\": %.3f, "
        "\"straggler_partition\": %d, \"straggler_slack_ms\": %.3f}%s\n",
        spill_hosts[i], spill.epochs,
        static_cast<unsigned long long>(spill.epoch_image_bytes),
        spill.capture_ms, spill.spill_ms, spill.frozen_ms, aspill.frozen_ms,
        spill.spill_ok ? "true" : "false",
        spill.reopen_ok ? "true" : "false", mode_ok ? "true" : "false",
        aspill.ledger.min_coverage, aspill.ledger.straggler_partition,
        aspill.ledger.straggler_slack_ms, i == 0 ? "," : "");
    spill_rows += buf;
  }
  spill_rows += "  ]";
  BenchReport::Instance().AddExtra("epoch_spill", spill_rows);
  BenchReport::Instance().AddExtra("async_capture_ok",
                                   async_ok ? "true" : "false");
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", min_coverage);
    BenchReport::Instance().AddExtra("ledger_min_coverage", buf);
  }
  BenchReport::Instance().AddExtra("ledger_coverage_ok",
                                   coverage_ok ? "true" : "false");
  ok = ok && coverage_ok;

  if (!ok && !JsonQuiet()) {
    std::printf("\nFAIL: %s\n",
                coverage_ok
                    ? "parallel run diverged from the sequential oracle"
                    : "ledger attribution below 95% of epoch wall time");
  }
  return bm.Finish(ok ? 0 : 1);
}
