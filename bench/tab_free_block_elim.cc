// Section 5.1 (text result): free-block elimination on a kernel build.
//
// Paper setup: run `make` followed by `make clean` on a Linux kernel source
// tree inside the guest, then size the disk delta a swap-out would save.
// Paper result: free-block elimination reduces the delta from 490 MB to
// 36 MB — the freed object-file blocks are dropped by the ext3 plugin that
// snoops bitmap writes below the guest.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/diskbench.h"
#include "src/guest/node.h"
#include "src/sim/simulator.h"

namespace tcsim {
namespace {

int Run(bool audit) {
  PrintHeader("Section 5.1", "free-block elimination (make; make clean)");

  Simulator sim;
  NodeConfig cfg;
  cfg.name = "pc1";
  cfg.id = 1;
  ExperimentNode node(&sim, Rng(5), cfg);

  std::unique_ptr<InvariantRegistry> reg;
  if (audit) {
    reg = std::make_unique<InvariantRegistry>(&sim);
    node.RegisterInvariants(reg.get());
    reg->StartPeriodic(kSecond);
  }

  KernelBuildApp::Params params;
  params.churn_bytes = 454ull * 1024 * 1024;      // object files built then cleaned
  params.persistent_bytes = 36ull * 1024 * 1024;  // retained build outputs
  KernelBuildApp app(&node, params);
  bool done = false;
  app.Run([&] { done = true; });
  while (!done && sim.Now() < 7200 * kSecond) {
    sim.RunUntil(sim.Now() + 10 * kSecond);
  }

  const double mb = 1024.0 * 1024.0;
  PrintSection("swap-out delta size");
  PrintRow("without free-block elimination", 490.0,
           static_cast<double>(app.DeltaBytesWithoutElimination()) / mb, "MB");
  PrintRow("with free-block elimination", 36.0,
           static_cast<double>(app.DeltaBytesWithElimination()) / mb, "MB");
  PrintValue("reduction factor",
             static_cast<double>(app.DeltaBytesWithoutElimination()) /
                 static_cast<double>(app.DeltaBytesWithElimination()),
             "x");
  PrintValue("blocks known free by the plugin",
             static_cast<double>(app.fs().plugin()->known_free_blocks()), "");

  PrintDigest(sim);
  return FinishAudit(reg.get());
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "tab_free_block_elim");
  return bm.Finish(tcsim::Run(tcsim::HasFlag(argc, argv, "--audit")));
}
