#!/usr/bin/env python3
"""Structural diff of a fresh consolidated bench JSON against the committed
baseline (the newest BENCH_PR<N>.json in the repository root).

The committed baseline locks in the bench *trajectory* — which benches run,
which metrics each reports, and that every one passed — not the measured
numbers, which vary by machine (and by libm across distros, which shifts the
event digests of rng-heavy scenarios). A regression that drops a bench, loses
a metric, or flips an "ok" to false fails this check; a slower machine does
not.

  bench/check_trajectory.py BASELINE NEW

Exit 0 when NEW covers the baseline's structure and all its benches pass.
"""

import json
import sys


def bench_index(doc):
    return {b.get("bench", "?"): b for b in doc.get("benches", [])}


def metric_labels(bench):
    """Set of (kind, name) for every metric the bench reported.

    The registry export is {"counters": {name: value}, "gauges": {...},
    "histograms": {...}}; the names are derived from the workload topology
    and are machine-independent even though the values are not. It lives
    under "telemetry"; pre-PR8 baselines emitted it as a duplicate
    "metrics" key (where json.load's last-wins rule made it the visible
    value), so fall back to that for old baselines.
    """
    labels = set()
    metrics = bench.get("telemetry") or bench.get("metrics") or {}
    if not isinstance(metrics, dict):
        return labels
    for kind, entries in metrics.items():
        if isinstance(entries, dict):
            for name in entries:
                labels.add((kind, name))
    return labels


# Repository data-path throughput keys tracked across consecutive baselines.
# Absent keys FAIL (the bench stopped measuring); lower numbers only WARN —
# the values are machine-dependent, the coverage is not.
REPO_THROUGHPUT_KEYS = (
    "put_mb_per_s",
    "materialize_mb_per_s",
    "spill_100_per_put_mb_per_s",
    "spill_100_batch_mb_per_s",
    "spill_100_speedup",
    "spill_1k_per_put_mb_per_s",
    "spill_1k_batch_mb_per_s",
    "spill_1k_speedup",
)
REGRESSION_WARN_RATIO = 0.7  # warn when a throughput falls below 70% of baseline


def check_repo_throughput(base, got, errors, warnings):
    base_rp = base.get("repo_persist") or {}
    got_rp = got.get("repo_persist") or {}
    if not base_rp:
        return
    if not got_rp:
        errors.append("tab_repo_persist: repo_persist summary missing")
        return
    if got_rp.get("spill_verified") is not True and "spill_verified" in base_rp:
        errors.append("tab_repo_persist: spill_verified is not true")
    for key in REPO_THROUGHPUT_KEYS:
        if key not in base_rp:
            continue  # older baseline without the spill sweep
        if key not in got_rp:
            errors.append(f"tab_repo_persist: throughput key dropped: {key}")
            continue
        old, new = base_rp[key], got_rp[key]
        if (isinstance(old, (int, float)) and isinstance(new, (int, float))
                and old > 0 and new < old * REGRESSION_WARN_RATIO):
            warnings.append(
                f"tab_repo_persist: {key} regressed {old:.3g} -> {new:.3g} "
                f"({100.0 * new / old:.0f}% of baseline)")


def check_ledger_attribution(name, base, got, errors, row_keys=()):
    """Shared gate for the epoch-ledger attribution (PR 10): once a baseline
    carries ledger keys, the fresh run must keep reporting them and keep
    ledger_coverage_ok true — the analyzer must account for >= 95% of each
    epoch's wall time. The measured coverage value itself is machine-timing
    noise above that floor and is not compared."""
    if "ledger_coverage_ok" in base:
        if got.get("ledger_coverage_ok") is not True:
            errors.append(f"{name}: ledger_coverage_ok is not true "
                          "(attribution below 95% of epoch wall time)")
        if not isinstance(got.get("ledger_min_coverage"),
                          (int, float, str)):
            errors.append(f"{name}: ledger_min_coverage key dropped")
    for rows_key, keys in row_keys:
        base_rows = base.get(rows_key, [])
        rows = got.get(rows_key, [])
        for i, base_row in enumerate(base_rows):
            if i >= len(rows):
                break
            for key in keys:
                if key in base_row and key not in rows[i]:
                    errors.append(f"{name}: {rows_key}[{i}] ledger key "
                                  f"dropped: {key}")


def check_frozen_window(base, got, errors, warnings):
    """tab_frozen_window: digest identity and row coverage are structural
    (errors); the measured reduction is machine-dependent (warn only when it
    falls well below the baseline's)."""
    if got.get("digest_oracle_ok") is not True:
        errors.append("tab_frozen_window: digest_oracle_ok is not true")
    base_rows = base.get("frozen_window", [])
    rows = got.get("frozen_window", [])
    if len(rows) < len(base_rows):
        errors.append(f"tab_frozen_window: sweep shrank "
                      f"({len(base_rows)} -> {len(rows)})")
    for row in rows:
        hosts = row.get("hosts")
        if row.get("digest_ok") is not True:
            errors.append(f"tab_frozen_window: hosts={hosts} async capture "
                          "diverged from synchronous")
        if row.get("spill_ok") is not True:
            errors.append(f"tab_frozen_window: hosts={hosts} epoch spill "
                          "failed")
        if "reduction" not in row:
            errors.append(f"tab_frozen_window: hosts={hosts} reduction "
                          "key dropped")
    old = base.get("frozen_reduction_1k")
    new = got.get("frozen_reduction_1k")
    if old is not None and new is None:
        errors.append("tab_frozen_window: frozen_reduction_1k key dropped")
    if (isinstance(old, (int, float)) and isinstance(new, (int, float))
            and old > 0 and new < old * REGRESSION_WARN_RATIO):
        warnings.append(
            f"tab_frozen_window: frozen_reduction_1k regressed "
            f"{old:.3g} -> {new:.3g} ({100.0 * new / old:.0f}% of baseline)")
    if got.get("frozen_reduction_ok") is not True:
        errors.append("tab_frozen_window: frozen_reduction_ok is not true "
                      "(below the 3x floor)")
    check_ledger_attribution(
        "tab_frozen_window", base, got, errors,
        row_keys=[("frozen_window",
                   ("ledger_coverage", "straggler_partition",
                    "straggler_slack_ms", "ledger_window_share",
                    "ledger_frozen_share", "ledger_commit_wait_share"))])


def check_failover(base, got, errors):
    """tab_failover: the transparency gate and recovery-latency coverage are
    structural. The measured latency is machine-dependent; that the bench
    measures it (the recovery_ms keys) and that failover stayed invisible to
    the external observer are not."""
    if got.get("transparency_ok") is not True:
        errors.append("tab_failover: transparency_ok is not true")
    if not isinstance(got.get("recovery_ms"), (int, float)):
        errors.append("tab_failover: recovery_ms key missing")
    base_rows = base.get("failover", [])
    rows = got.get("failover", [])
    if len(rows) < len(base_rows):
        errors.append(f"tab_failover: scale sweep shrank "
                      f"({len(base_rows)} -> {len(rows)})")
    for row in rows:
        hosts = row.get("hosts")
        if row.get("transparent") is not True:
            errors.append(f"tab_failover: hosts={hosts} failover was visible "
                          "to the external observer")
        if not isinstance(row.get("recovery_ms"), (int, float)):
            errors.append(f"tab_failover: hosts={hosts} recovery_ms dropped")
    check_ledger_attribution(
        "tab_failover", base, got, errors,
        row_keys=[("failover",
                   ("ledger_coverage", "straggler_partition",
                    "straggler_slack_ms", "ledger_hold_p99_ms"))])


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    base_benches = bench_index(baseline)
    new_benches = bench_index(fresh)
    errors = []
    warnings = []

    for name, base in sorted(base_benches.items()):
        got = new_benches.get(name)
        if got is None:
            errors.append(f"bench missing from new run: {name}")
            continue
        if got.get("ok") is not True:
            errors.append(f"bench failed: {name} (ok={got.get('ok')!r})")
        missing = metric_labels(base) - metric_labels(got)
        for kind, label in sorted(missing):
            errors.append(f"{name}: metric dropped: [{kind}] {label}")
        # Bench-specific structural invariants that must never regress.
        if name == "tab_parallel_kernel":
            if got.get("digest_oracle_ok") is not True:
                errors.append(f"{name}: digest_oracle_ok is not true")
            sweep = got.get("partition_sweep", [])
            base_sweep = base.get("partition_sweep", [])
            if len(sweep) < len(base_sweep):
                errors.append(f"{name}: partition sweep shrank "
                              f"({len(base_sweep)} -> {len(sweep)})")
            for row in sweep:
                if row.get("digest_ok") is not True:
                    errors.append(f"{name}: partitions={row.get('partitions')}"
                                  " digest mismatch vs oracle")
            base_spill = base.get("epoch_spill", [])
            spill = got.get("epoch_spill", [])
            if len(spill) < len(base_spill):
                errors.append(f"{name}: epoch spill rows shrank "
                              f"({len(base_spill)} -> {len(spill)})")
            for row in spill:
                if row.get("spill_ok") is not True or \
                        row.get("reopen_ok") is not True:
                    errors.append(f"{name}: hosts={row.get('hosts')} epoch "
                                  "spill failed or diverged on reopen")
            if "async_capture_ok" in base and \
                    got.get("async_capture_ok") is not True:
                errors.append(f"{name}: async_capture_ok is not true")
            check_ledger_attribution(
                name, base, got, errors,
                row_keys=[("epoch_spill",
                           ("ledger_coverage", "straggler_partition",
                            "straggler_slack_ms"))])
        if name == "tab_frozen_window":
            check_frozen_window(base, got, errors, warnings)
        if name == "tab_repo_persist":
            check_repo_throughput(base, got, errors, warnings)
        if name == "tab_failover":
            check_failover(base, got, errors)

    if baseline.get("micro_benchmarks") and not fresh.get("micro_benchmarks"):
        errors.append("micro_benchmarks section missing from new run")

    for w in warnings:
        print(f"check_trajectory: WARN: {w}")
    if errors:
        for e in errors:
            print(f"check_trajectory: {e}")
        print(f"check_trajectory: FAIL ({len(errors)} problems)")
        return 1
    print(f"check_trajectory: OK ({len(base_benches)} benches covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
