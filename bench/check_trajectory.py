#!/usr/bin/env python3
"""Structural diff of a fresh consolidated bench JSON against the committed
baseline (BENCH_PR6.json).

The committed baseline locks in the bench *trajectory* — which benches run,
which metrics each reports, and that every one passed — not the measured
numbers, which vary by machine (and by libm across distros, which shifts the
event digests of rng-heavy scenarios). A regression that drops a bench, loses
a metric, or flips an "ok" to false fails this check; a slower machine does
not.

  bench/check_trajectory.py BASELINE NEW

Exit 0 when NEW covers the baseline's structure and all its benches pass.
"""

import json
import sys


def bench_index(doc):
    return {b.get("bench", "?"): b for b in doc.get("benches", [])}


def metric_labels(bench):
    """Set of (kind, name) for every metric the bench reported.

    metrics is {"counters": {name: value}, "gauges": {...}, "histograms":
    {...}}; the names are derived from the workload topology and are
    machine-independent even though the values are not.
    """
    labels = set()
    metrics = bench.get("metrics") or {}
    for kind, entries in metrics.items():
        if isinstance(entries, dict):
            for name in entries:
                labels.add((kind, name))
    return labels


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    base_benches = bench_index(baseline)
    new_benches = bench_index(fresh)
    errors = []

    for name, base in sorted(base_benches.items()):
        got = new_benches.get(name)
        if got is None:
            errors.append(f"bench missing from new run: {name}")
            continue
        if got.get("ok") is not True:
            errors.append(f"bench failed: {name} (ok={got.get('ok')!r})")
        missing = metric_labels(base) - metric_labels(got)
        for kind, label in sorted(missing):
            errors.append(f"{name}: metric dropped: [{kind}] {label}")
        # Bench-specific structural invariants that must never regress.
        if name == "tab_parallel_kernel":
            if got.get("digest_oracle_ok") is not True:
                errors.append(f"{name}: digest_oracle_ok is not true")
            sweep = got.get("partition_sweep", [])
            base_sweep = base.get("partition_sweep", [])
            if len(sweep) < len(base_sweep):
                errors.append(f"{name}: partition sweep shrank "
                              f"({len(base_sweep)} -> {len(sweep)})")
            for row in sweep:
                if row.get("digest_ok") is not True:
                    errors.append(f"{name}: partitions={row.get('partitions')}"
                                  " digest mismatch vs oracle")

    if baseline.get("micro_benchmarks") and not fresh.get("micro_benchmarks"):
        errors.append("micro_benchmarks section missing from new run")

    if errors:
        for e in errors:
            print(f"check_trajectory: {e}")
        print(f"check_trajectory: FAIL ({len(errors)} problems)")
        return 1
    print(f"check_trajectory: OK ({len(base_benches)} benches covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
