// Figure 4: periodic checkpointing of a microbenchmark executing a 10 ms
// sleep in a loop.
//
// Paper setup: usleep(10ms) in a loop (nominal 20 ms per iteration due to
// timer-tick quantization), 6000 iterations, one transparent checkpoint
// every 5 seconds. Paper results: during normal intra-checkpoint execution
// 97% of iterations are timer-accurate to within 28 us; a checkpoint briefly
// increases measurement error to ~80 us.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/microbench.h"
#include "src/checkpoint/local_checkpoint.h"
#include "src/guest/node.h"
#include "src/sim/simulator.h"

namespace tcsim {
namespace {

int Run(bool audit) {
  PrintHeader("Figure 4", "periodic checkpointing of a 10 ms usleep loop");

  Simulator sim;
  NodeConfig cfg;
  cfg.name = "pc1";
  cfg.id = 1;
  ExperimentNode node(&sim, Rng(3), cfg);
  LocalCheckpointEngine engine(&sim, &node, CheckpointPolicy{});

  std::unique_ptr<InvariantRegistry> reg;
  if (audit) {
    reg = std::make_unique<InvariantRegistry>(&sim);
    node.RegisterInvariants(reg.get());
    reg->StartPeriodic(50 * kMillisecond);
  }

  SleepLoopApp::Params params;
  params.iterations = 6000;
  SleepLoopApp app(&node, params);
  bool done = false;
  app.Start([&] { done = true; });

  std::function<void()> periodic = [&] {
    if (!engine.in_progress()) {
      engine.CheckpointNow(nullptr);
    }
    sim.Schedule(5 * kSecond, periodic);
  };
  sim.Schedule(5 * kSecond, periodic);

  while (!done && sim.Now() < 600 * kSecond) {
    sim.RunUntil(sim.Now() + kSecond);
  }

  const Samples& iters = app.iteration_times_ms();
  const Summary s = iters.Summarize();

  // Split iterations into those near a checkpoint and the rest.
  Samples near_ckpt;
  Samples normal;
  size_t trace_i = 0;
  const auto& records = app.trace().records();
  for (size_t i = 0; i < records.size(); ++i) {
    bool near = false;
    for (const LocalCheckpointRecord& rec : engine.history()) {
      // Guest-visible instant of the checkpoint = virtual time at suspension.
      if (std::abs(records[i].virtual_time -
                   (rec.suspended_at - (rec.resumed_at - rec.saved_at))) < 100 * kMillisecond) {
        near = true;
        break;
      }
    }
    (near ? near_ckpt : normal).Add(records[i].value);
    (void)trace_i;
  }

  PrintSection("iteration time");
  PrintRow("nominal iteration", 20.0, s.mean, "ms");
  PrintRow("fraction within 28 us of nominal (normal)", 0.97,
           normal.FractionWithin(normal.Percentile(50), 0.028), "frac");
  PrintSection("checkpoint impact");
  PrintValue("checkpoints taken", static_cast<double>(engine.history().size()), "");
  const double max_err_ms =
      std::max(std::abs(near_ckpt.Summarize().max - 20.0),
               std::abs(near_ckpt.Summarize().min - 20.0));
  PrintRow("max timer error at a checkpoint", 0.080, max_err_ms, "ms");
  PrintNote("paper: spikes at checkpoints briefly raise timer error to ~80 us —");
  PrintNote("the empirical limit of local checkpoint time-transparency.");

  TimeSeries series;
  for (size_t i = 0; i < records.size(); ++i) {
    series.Add(records[i].virtual_time, records[i].value);
  }
  PrintSeries("fig4.iteration_time_ms", series);

  PrintDigest(sim);
  return FinishAudit(reg.get());
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "fig4_sleep_loop");
  return bm.Finish(tcsim::Run(tcsim::HasFlag(argc, argv, "--audit")));
}
