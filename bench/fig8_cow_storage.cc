// Figure 8: copy-on-write storage versus native disk speed (Bonnie++).
//
// Paper setup: Bonnie++ on a 512 MB file (2x guest memory) against three
// configurations — a raw disk partition (Base), the original LVM snapshot
// branching storage (Branch-Orig), and the paper's modified branching
// storage (Branch) — across block/character reads, rewrites and writes.
// Paper results: on a freshly created disk, sequential block writes to
// Branch pay ~17% over Base (scattered metadata-region initialisation that
// disappears as the disk ages, converging to within 2%); Branch-Orig block
// writes are 74% slower than Branch because of read-before-write.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/diskbench.h"
#include "src/guest/node.h"
#include "src/sim/simulator.h"

namespace tcsim {
namespace {

struct Config {
  const char* name;
  NodeConfig::StorageMode storage;
  BranchStore::WriteMode write_mode;
};

BonnieApp::Results RunBonnie(const Config& config, bool aged, MultiRunAudit* audit) {
  Simulator sim;
  NodeConfig cfg;
  cfg.name = "pc1";
  cfg.id = 1;
  cfg.storage_mode = config.storage;
  cfg.write_mode = config.write_mode;
  ExperimentNode node(&sim, Rng(5), cfg);

  std::unique_ptr<InvariantRegistry> reg;
  if (audit->enabled) {
    reg = std::make_unique<InvariantRegistry>(&sim);
    node.RegisterInvariants(reg.get());
    reg->StartPeriodic(kSecond);
  }

  BonnieApp::Params params;
  params.file_bytes = 512ull * 1024 * 1024;
  BonnieApp::Results results;

  auto run_once = [&](std::function<void()> done) {
    auto app = std::make_shared<BonnieApp>(&node, params);
    app->Run([&results, app, done](const BonnieApp::Results& r) {
      results = r;
      if (done) {
        done();
      }
    });
  };

  bool finished = false;
  if (aged) {
    // Age the store with a first full pass, then measure the second pass:
    // metadata regions are initialised and first-writes have happened.
    run_once([&] { run_once([&] { finished = true; }); });
  } else {
    run_once([&] { finished = true; });
  }
  while (!finished && sim.Now() < 7200 * kSecond) {
    sim.RunUntil(sim.Now() + 10 * kSecond);
  }
  audit->Collect(sim, reg.get());
  return results;
}

void PrintResults(const char* label, const BonnieApp::Results& r) {
  BenchReport& rep = BenchReport::Instance();
  const std::string prefix = std::string(label) + ".";
  rep.RecordMetric(prefix + "block_reads", false, 0, r.block_read_mbs, "MB/s");
  rep.RecordMetric(prefix + "char_reads", false, 0, r.char_read_mbs, "MB/s");
  rep.RecordMetric(prefix + "rewrites", false, 0, r.rewrite_mbs, "MB/s");
  rep.RecordMetric(prefix + "block_writes", false, 0, r.block_write_mbs, "MB/s");
  rep.RecordMetric(prefix + "char_writes", false, 0, r.char_write_mbs, "MB/s");
  if (JsonQuiet()) {
    return;
  }
  std::printf("%-14s block-reads %7.2f  char-reads %7.2f  rewrites %7.2f  "
              "block-writes %7.2f  char-writes %7.2f  (MB/s)\n",
              label, r.block_read_mbs, r.char_read_mbs, r.rewrite_mbs, r.block_write_mbs,
              r.char_write_mbs);
}

int Run(bool audit_enabled) {
  PrintHeader("Figure 8", "copy-on-write storage vs native disk (Bonnie++)");
  MultiRunAudit audit(audit_enabled);

  const Config base{"Base", NodeConfig::StorageMode::kRaw, BranchStore::WriteMode::kRedoLog};
  const Config branch{"Branch", NodeConfig::StorageMode::kBranch,
                      BranchStore::WriteMode::kRedoLog};
  const Config branch_orig{"Branch-Orig", NodeConfig::StorageMode::kBranch,
                           BranchStore::WriteMode::kReadBeforeWrite};

  PrintSection("fresh disk");
  const BonnieApp::Results r_base = RunBonnie(base, false, &audit);
  const BonnieApp::Results r_branch = RunBonnie(branch, false, &audit);
  const BonnieApp::Results r_orig = RunBonnie(branch_orig, false, &audit);
  PrintResults("Base", r_base);
  PrintResults("Branch", r_branch);
  PrintResults("Branch-Orig", r_orig);

  PrintSection("headline comparisons (fresh disk)");
  PrintRow("Branch block-write overhead vs Base", 17.0,
           (1.0 - r_branch.block_write_mbs / r_base.block_write_mbs) * 100.0, "%");
  PrintRow("Branch-Orig block-write slowdown vs Branch", 74.0,
           (1.0 - r_orig.block_write_mbs / r_branch.block_write_mbs) * 100.0, "%");

  PrintSection("aged disk (second pass: metadata filled, first-writes done)");
  const BonnieApp::Results r_base_aged = RunBonnie(base, true, &audit);
  const BonnieApp::Results r_branch_aged = RunBonnie(branch, true, &audit);
  const BonnieApp::Results r_orig_aged = RunBonnie(branch_orig, true, &audit);
  PrintResults("Base", r_base_aged);
  PrintResults("Branch", r_branch_aged);
  PrintResults("Branch-Orig", r_orig_aged);
  PrintRow("Branch block-write overhead vs Base (aged)", 2.0,
           (1.0 - r_branch_aged.block_write_mbs / r_base_aged.block_write_mbs) * 100.0, "%");
  PrintRow("Branch-Orig slowdown vs Branch (aged)", 0.0,
           (1.0 - r_orig_aged.block_write_mbs / r_branch_aged.block_write_mbs) * 100.0, "%");
  PrintNote("paper: as the disk ages, metadata and read-before-write overheads vanish.");

  return audit.Finish();
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "fig8_cow_storage");
  return bm.Finish(tcsim::Run(tcsim::HasFlag(argc, argv, "--audit")));
}
