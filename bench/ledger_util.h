// In-process epoch-ledger attribution for benches (PR 10).
//
// The tab_* benches that exercise the epoch pipeline arm obs::EpochLedger
// around each measured run and fold the analyzer's verdict — coverage,
// straggler, phase shares, output-hold tail — into their JSON rows, so the
// consolidated BENCH_*.json carries latency attribution next to the raw
// timings and bench/check_trajectory.py can gate on it.
//
// Benches including this header must link tcsim_analyze_lib (tools/).

#ifndef TCSIM_BENCH_LEDGER_UTIL_H_
#define TCSIM_BENCH_LEDGER_UTIL_H_

#include <cstdint>
#include <map>

#include "src/obs/epoch_ledger.h"
#include "tools/analyze.h"

namespace tcsim {

// The row-level digest of one run's ledger.
struct LedgerAttribution {
  bool ok = false;            // analysis ran and found no structural errors
  size_t epochs = 0;
  double min_coverage = 0.0;  // min over epochs of attributed/wall
  int32_t straggler_partition = -1;  // most frequent straggler across epochs
  double straggler_slack_ms = 0.0;   // mean barrier wait on the straggler
  double window_share = 0.0;         // aggregate phase shares of total wall
  double frozen_share = 0.0;         // freeze + capture + spill
  double commit_wait_share = 0.0;
  double hold_p99_us = 0.0;          // output-hold tail (HA runs; else 0)
};

// Analyzes the globally held ledger records (call after the run's joins) and
// disables further recording; the records stay held for bench_util's
// --ledger export at Finish.
inline LedgerAttribution AnalyzeLedgerRun() {
  obs::EpochLedger& ledger = obs::EpochLedger::Global();
  const tools::LedgerAnalysis analysis =
      tools::Analyze(tools::FromLedger(ledger.Merged()));
  ledger.Disable();
  LedgerAttribution out;
  out.ok = analysis.ok();
  out.epochs = analysis.epochs.size();
  out.min_coverage = analysis.min_coverage;
  out.hold_p99_us = analysis.hold_p99_us;
  std::map<int32_t, size_t> straggler_votes;
  for (const tools::EpochAnalysis& ep : analysis.epochs) {
    if (ep.straggler_partition >= 0) {
      ++straggler_votes[ep.straggler_partition];
    }
    out.straggler_slack_ms += ep.straggler_slack_ms;
  }
  if (!analysis.epochs.empty()) {
    out.straggler_slack_ms /= static_cast<double>(analysis.epochs.size());
  }
  size_t votes = 0;
  for (const auto& [partition, n] : straggler_votes) {
    if (n > votes) {
      votes = n;
      out.straggler_partition = partition;
    }
  }
  if (analysis.total_wall_ms > 1e-9) {
    for (const auto& [phase, ms] : analysis.phase_totals_ms) {
      const double share = ms / analysis.total_wall_ms;
      if (phase == "window") {
        out.window_share += share;
      } else if (phase == "freeze" || phase == "capture" || phase == "spill") {
        out.frozen_share += share;
      } else if (phase == "commit_wait") {
        out.commit_wait_share += share;
      }
    }
  }
  return out;
}

}  // namespace tcsim

#endif  // TCSIM_BENCH_LEDGER_UTIL_H_
