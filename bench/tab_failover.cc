// HA failover: recovery latency and output hold time under continuous
// micro-checkpointing at 100 and 1000 hosts, with the external-observer
// transparency gate inline.
//
// For each scale the same seeded experiment runs twice under the HA
// subsystem (two-phase capture, output-commit buffering): once fault-free
// and once with a seeded partition-kill schedule. The bench FAILS (non-zero
// exit) unless every kill recovers from the newest committed image AND the
// faulty run's external-observer trace is bit-identical to the fault-free
// one — same record sequence, zero time delta, zero value delta — with equal
// per-node behavior digests. Recovery latency (wall) and output hold time
// (simulated) are the reported costs of that transparency.
//
//   $ ./build/bench/tab_failover [--json] [--mc-hz=N] [--kills=K] [--seed=S]
//        [--sim-ms=T] [--sync]
//
// --mc-hz sets the micro-checkpoint frequency in simulated hertz (default
// 50, i.e. a 20 ms epoch); --sync switches to synchronous capture (lag 0),
// the digest-oracle configuration. Hold time is a function of the commit
// lag, so --sync roughly halves it; recovery latency is dominated by image
// restore + replay and is what the trajectory baseline tracks.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/ledger_util.h"
#include "src/emulab/external_observer.h"
#include "src/ha/fault_injector.h"
#include "src/ha/micro_checkpointer.h"
#include "src/net/topology.h"
#include "src/sim/digest.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

using namespace tcsim;

namespace {

struct Scale {
  uint32_t hosts;
  uint32_t hosts_per_lan;
  uint32_t lans_per_zone;
};

struct HaRun {
  TraceLog trace;
  uint64_t behavior_digest = 0;
  uint64_t epochs = 0;
  uint64_t released = 0;
  uint64_t replayed = 0;
  uint64_t discarded = 0;
  uint64_t suppressed = 0;
  double hold_ms_mean = 0;
  double hold_ms_p99 = 0;
  double recovery_ms_mean = 0;
  double recovery_ms_max = 0;
  double rollback_ms_mean = 0;
  size_t recoveries = 0;
  bool recovered_ok = true;
  double wall_s = 0;
  LedgerAttribution ledger;
};

HaRun RunOnce(const Scale& scale, SimTime period, SimTime horizon,
              bool sync_mode, ha::FaultInjector* faults) {
  obs::MetricsRegistry::Global().ResetAll();
  GeneratedTopologyParams params;
  params.hosts = scale.hosts;
  params.hosts_per_lan = scale.hosts_per_lan;
  params.lans_per_zone = scale.lans_per_zone;
  auto topo = GeneratedTopology::Build(params, /*partitions=*/4, /*workers=*/3);
  emulab::ExternalObserver observer;
  ha::MicroCheckpointPolicy policy;
  policy.period = period;
  policy.max_in_flight_epochs = sync_mode ? 0 : 1;
  policy.buffer_output = true;
  ha::MicroCheckpointer mc(topo.get(), policy);
  mc.SetObserver(&observer);
  if (faults != nullptr) {
    mc.SetFaultInjector(faults);
  }

  obs::EpochLedger::Global().Enable();
  const auto start = std::chrono::steady_clock::now();
  mc.RunUntil(horizon);
  const auto stop = std::chrono::steady_clock::now();

  HaRun r;
  r.ledger = AnalyzeLedgerRun();
  r.trace = observer.trace();
  Fnv1aDigest behavior;
  for (size_t i = 0; i < topo->node_count(); ++i) {
    topo->node(i)->MixBehavior(&behavior);
  }
  r.behavior_digest = behavior.value();
  r.epochs = mc.epochs_committed();
  r.released = mc.output_buffer()->released_total();
  r.replayed = mc.output_buffer()->replayed_total();
  r.discarded = mc.output_buffer()->discarded_total();
  r.suppressed = mc.output_buffer()->suppressed_total();
  const obs::Histogram* hold =
      obs::MetricsRegistry::Global().FindHistogram("ha.buffer.hold_time_us");
  r.hold_ms_mean = hold->mean() / 1000.0;
  r.hold_ms_p99 = hold->ApproxPercentile(99) / 1000.0;
  for (const ha::RecoveryRecord& rec : mc.failover()->recoveries()) {
    r.recovered_ok = r.recovered_ok && rec.ok;
    r.recovery_ms_mean += rec.wall_ms;
    r.recovery_ms_max = std::max(r.recovery_ms_max, rec.wall_ms);
    r.rollback_ms_mean += static_cast<double>(rec.killed_at - rec.restored_to) /
                          static_cast<double>(kMillisecond);
  }
  r.recoveries = mc.failover()->recoveries().size();
  if (r.recoveries > 0) {
    r.recovery_ms_mean /= static_cast<double>(r.recoveries);
    r.rollback_ms_mean /= static_cast<double>(r.recoveries);
  }
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  return r;
}

uint64_t FlagU64(int argc, char** argv, const char* flag, uint64_t fallback) {
  const char* v = FlagValue(argc, argv, flag);
  return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10)
                                      : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  BenchMain bm(argc, argv, "tab_failover");

  const uint64_t mc_hz = FlagU64(argc, argv, "--mc-hz", 50);
  const uint32_t kills =
      static_cast<uint32_t>(FlagU64(argc, argv, "--kills", 3));
  const uint64_t seed = FlagU64(argc, argv, "--seed", 9);
  const SimTime horizon =
      static_cast<SimTime>(FlagU64(argc, argv, "--sim-ms", 200)) * kMillisecond;
  const bool sync_mode = HasFlag(argc, argv, "--sync");
  const SimTime period =
      std::max<SimTime>(1, kSecond / static_cast<SimTime>(mc_hz));

  PrintHeader("tab_failover",
              "HA failover: recovery latency, hold time, and the "
              "external-observer transparency gate");

  const Scale scales[] = {{100, 5, 5}, {1000, 10, 25}};
  bool ok = true;
  bool coverage_ok = true;
  double min_coverage = 1.0;
  double recovery_ms_worst_mean = 0;
  std::string rows = "[\n";
  for (size_t i = 0; i < 2; ++i) {
    const Scale& scale = scales[i];
    const HaRun clean = RunOnce(scale, period, horizon, sync_mode, nullptr);
    ha::FaultInjector faults(seed);
    faults.GenerateKillSchedule(/*partitions=*/4, kills, horizon);
    const HaRun faulty = RunOnce(scale, period, horizon, sync_mode, &faults);

    const TraceDiff diff = faulty.trace.Compare(clean.trace);
    const bool transparent =
        diff.comparable && diff.max_time_delta == 0 &&
        diff.max_value_delta == 0 &&
        faulty.behavior_digest == clean.behavior_digest &&
        faulty.recovered_ok && faulty.recoveries == kills;
    ok = ok && transparent;
    recovery_ms_worst_mean =
        std::max(recovery_ms_worst_mean, faulty.recovery_ms_mean);

    char section[96];
    std::snprintf(section, sizeof section,
                  "%u hosts, %llu Hz micro-checkpoints, %u kills", scale.hosts,
                  static_cast<unsigned long long>(mc_hz), kills);
    PrintSection(section);
    PrintValue("epochs committed", static_cast<double>(faulty.epochs), "");
    PrintValue("output released", static_cast<double>(faulty.released), "pkts");
    PrintValue("hold time mean", faulty.hold_ms_mean, "ms");
    PrintValue("hold time p99", faulty.hold_ms_p99, "ms");
    PrintValue("recovery latency mean", faulty.recovery_ms_mean, "ms");
    PrintValue("recovery latency max", faulty.recovery_ms_max, "ms");
    PrintValue("rollback depth mean", faulty.rollback_ms_mean, "sim ms");
    PrintValue("deliveries replayed", static_cast<double>(faulty.replayed), "");
    PrintValue("holds discarded", static_cast<double>(faulty.discarded), "");
    PrintValue("re-emissions suppressed",
               static_cast<double>(faulty.suppressed), "");
    PrintValue("ledger coverage (faulty, min epoch)",
               faulty.ledger.min_coverage, "");
    PrintValue("straggler slack (mean)", faulty.ledger.straggler_slack_ms,
               "ms");
    PrintValue("ledger hold p99", faulty.ledger.hold_p99_us / 1000.0, "ms");
    const bool cover_ok = faulty.ledger.ok && clean.ledger.ok &&
                          faulty.ledger.min_coverage >= 0.95 &&
                          clean.ledger.min_coverage >= 0.95;
    coverage_ok = coverage_ok && cover_ok;
    min_coverage = std::min(
        {min_coverage, faulty.ledger.min_coverage, clean.ledger.min_coverage});
    PrintNote(transparent
                  ? "faulty trace bit-identical to fault-free at the "
                    "external observer"
                  : std::string("TRANSPARENCY FAILED: ") + diff.Describe());
    BenchReport::Instance().RecordDigest(faulty.behavior_digest);

    char buf[768];
    std::snprintf(
        buf, sizeof buf,
        "    {\"hosts\": %u, \"mc_hz\": %llu, \"kills\": %u, \"epochs\": %llu, "
        "\"released\": %llu, \"hold_ms_mean\": %.4f, \"hold_ms_p99\": %.4f, "
        "\"recovery_ms\": %.4f, \"recovery_ms_max\": %.4f, "
        "\"rollback_sim_ms\": %.4f, \"replayed\": %llu, \"discarded\": %llu, "
        "\"suppressed\": %llu, \"transparent\": %s, "
        "\"ledger_coverage\": %.3f, \"straggler_partition\": %d, "
        "\"straggler_slack_ms\": %.3f, \"ledger_hold_p99_ms\": %.4f}%s\n",
        scale.hosts, static_cast<unsigned long long>(mc_hz), kills,
        static_cast<unsigned long long>(faulty.epochs),
        static_cast<unsigned long long>(faulty.released), faulty.hold_ms_mean,
        faulty.hold_ms_p99, faulty.recovery_ms_mean, faulty.recovery_ms_max,
        faulty.rollback_ms_mean,
        static_cast<unsigned long long>(faulty.replayed),
        static_cast<unsigned long long>(faulty.discarded),
        static_cast<unsigned long long>(faulty.suppressed),
        transparent ? "true" : "false", faulty.ledger.min_coverage,
        faulty.ledger.straggler_partition, faulty.ledger.straggler_slack_ms,
        faulty.ledger.hold_p99_us / 1000.0, i == 0 ? "," : "");
    rows += buf;
  }
  rows += "  ]";
  BenchReport::Instance().AddExtra("failover", rows);
  {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", recovery_ms_worst_mean);
    BenchReport::Instance().AddExtra("recovery_ms", buf);
  }
  BenchReport::Instance().AddExtra("transparency_ok", ok ? "true" : "false");
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", min_coverage);
    BenchReport::Instance().AddExtra("ledger_min_coverage", buf);
  }
  BenchReport::Instance().AddExtra("ledger_coverage_ok",
                                   coverage_ok ? "true" : "false");

  if (!JsonQuiet()) {
    if (!ok) {
      std::printf("\nFAIL: failover was visible to the external observer\n");
    } else if (!coverage_ok) {
      std::printf("\nFAIL: ledger attribution below 95%% of epoch wall time\n");
    }
  }
  return bm.Finish(ok && coverage_ok ? 0 : 1);
}
