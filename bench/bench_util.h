// Shared output helpers for the figure/table reproduction harnesses.
//
// Every binary in bench/ regenerates one table or figure from the paper's
// evaluation (Section 7) and prints (a) the paper's reported values, (b) the
// values measured in this reproduction, in a stable plain-text format that
// EXPERIMENTS.md quotes.
//
// All helpers also record into a process-wide BenchReport. When the binary is
// invoked with --json, the plain-text output is suppressed and BenchMain
// emits the recorded report as one JSON object on stdout instead — the same
// numbers, machine-readable, consumed by bench/run_all.sh to build a
// consolidated JSON document (BENCH_PR5.json by default).
//
// Telemetry flags (PR 5): --trace[=FILE] records every span/instant of the
// run and writes Chrome trace JSON (open at chrome://tracing) to FILE or
// <name>_trace.json; --metrics prints the metric registry and the span
// summary table after the run. Under --audit without --trace the harness arms
// the bounded ring-buffer flight recorder instead, so the first invariant
// violation dumps the timeline that led up to it. With --json the metric
// registry is always folded into the emitted object under "telemetry" —
// "metrics" is taken by the paper-vs-measured rows EmitJson writes, and
// emitting both under one key produced a duplicate-key object whose parse
// depended on the reader's last-wins/first-wins policy.
//
// --ledger[=FILE] (PR 10) arms the epoch critical-path ledger
// (obs::EpochLedger) at startup and writes the final run's merged records as
// JSONL to FILE (default <name>_ledger.jsonl) at exit — feed the file to
// tools/tcsim_analyze. Benches that compute attribution columns in-process
// re-Enable() the ledger per measured run regardless of the flag; the flag
// only controls whether the last run's ledger is persisted.

#ifndef TCSIM_BENCH_BENCH_UTIL_H_
#define TCSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/epoch_ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_session.h"
#include "src/sim/invariants.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace tcsim {

// True when `flag` (e.g. "--audit") appears among the arguments.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

// Value of `--flag` / `--flag=value` among the arguments: null when absent,
// "" for the bare flag, the text after '=' otherwise.
inline const char* FlagValue(int argc, char** argv, const char* flag) {
  const size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0) {
      if (argv[i][len] == '\0') {
        return "";
      }
      if (argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
    }
  }
  return nullptr;
}

// Process-wide recorder behind the Print* helpers. Benches never touch it
// directly except through BenchMain (below) or AddExtra() for bench-specific
// structured payloads.
class BenchReport {
 public:
  static BenchReport& Instance() {
    static BenchReport report;
    return report;
  }

  bool json_mode() const { return json_mode_; }
  void SetJsonMode(bool on) { json_mode_ = on; }
  void SetName(std::string name) { name_ = std::move(name); }

  void RecordHeader(const std::string& id, const std::string& title) {
    id_ = id;
    title_ = title;
  }
  void RecordSection(const std::string& name) { section_ = name; }
  void RecordMetric(const std::string& label, bool has_paper, double paper,
                    double measured, const std::string& unit) {
    metrics_.push_back({section_, label, unit, paper, measured, has_paper});
  }
  void RecordNote(const std::string& note) { notes_.push_back(note); }
  void RecordDigest(uint64_t digest) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(digest));
    digests_.push_back(buf);
  }
  void RecordAudit(bool ok) {
    audit_seen_ = true;
    audit_ok_ = audit_ok_ && ok;
  }
  void RecordSeries(const std::string& name, const TimeSeries& series,
                    size_t stride) {
    series_.push_back({name, {}});
    for (size_t i = 0; i < series.size(); i += stride) {
      series_.back().points.push_back(
          {ToSeconds(series.points()[i].time), series.points()[i].value});
    }
  }

  // Attaches a bench-specific raw JSON value (object or array) under `key`.
  // The caller is responsible for `raw` being valid JSON.
  void AddExtra(const std::string& key, const std::string& raw) {
    extras_.push_back({key, raw});
  }

  // Emits the whole report as one JSON object. `rc` is the process exit code
  // the bench is about to return; "ok" reflects it.
  void EmitJson(int rc) const {
    std::printf("{\n  \"bench\": \"%s\",\n", Escape(name_).c_str());
    if (!id_.empty()) {
      std::printf("  \"id\": \"%s\",\n  \"title\": \"%s\",\n",
                  Escape(id_).c_str(), Escape(title_).c_str());
    }
    std::printf("  \"metrics\": [");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::printf("%s\n    {\"section\": \"%s\", \"label\": \"%s\", "
                  "\"unit\": \"%s\", ",
                  i ? "," : "", Escape(m.section).c_str(),
                  Escape(m.label).c_str(), Escape(m.unit).c_str());
      if (m.has_paper) {
        std::printf("\"paper\": %.6g, ", m.paper);
      }
      std::printf("\"measured\": %.6g}", m.measured);
    }
    std::printf("%s],\n", metrics_.empty() ? "" : "\n  ");
    std::printf("  \"digests\": [");
    for (size_t i = 0; i < digests_.size(); ++i) {
      std::printf("%s\"%s\"", i ? ", " : "", digests_[i].c_str());
    }
    std::printf("],\n");
    if (!series_.empty()) {
      std::printf("  \"series\": {");
      for (size_t i = 0; i < series_.size(); ++i) {
        std::printf("%s\n    \"%s\": [", i ? "," : "",
                    Escape(series_[i].name).c_str());
        for (size_t j = 0; j < series_[i].points.size(); ++j) {
          std::printf("%s[%.3f, %.6g]", j ? ", " : "",
                      series_[i].points[j].t, series_[i].points[j].v);
        }
        std::printf("]");
      }
      std::printf("\n  },\n");
    }
    if (!notes_.empty()) {
      std::printf("  \"notes\": [");
      for (size_t i = 0; i < notes_.size(); ++i) {
        std::printf("%s\"%s\"", i ? ", " : "", Escape(notes_[i]).c_str());
      }
      std::printf("],\n");
    }
    for (const Extra& e : extras_) {
      std::printf("  \"%s\": %s,\n", Escape(e.key).c_str(), e.raw.c_str());
    }
    if (audit_seen_) {
      std::printf("  \"audit_ok\": %s,\n", audit_ok_ ? "true" : "false");
    }
    std::printf("  \"ok\": %s\n}\n", rc == 0 ? "true" : "false");
  }

 private:
  struct Metric {
    std::string section, label, unit;
    double paper, measured;
    bool has_paper;
  };
  struct Point {
    double t, v;
  };
  struct Series {
    std::string name;
    std::vector<Point> points;
  };
  struct Extra {
    std::string key, raw;
  };

  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  bool json_mode_ = false;
  std::string name_, id_, title_, section_;
  std::vector<Metric> metrics_;
  std::vector<std::string> digests_;
  std::vector<std::string> notes_;
  std::vector<Series> series_;
  std::vector<Extra> extras_;
  bool audit_seen_ = false;
  bool audit_ok_ = true;
};

// Per-binary entry/exit shim: parses --json, names the report, and at the end
// of main emits the JSON object when requested.
//
//   int main(int argc, char** argv) {
//     tcsim::BenchMain bm(argc, argv, "fig4_sleep_loop");
//     return bm.Finish(tcsim::Run(tcsim::HasFlag(argc, argv, "--audit")));
//   }
class BenchMain {
 public:
  BenchMain(int argc, char** argv, const char* name) {
    BenchReport::Instance().SetName(name);
    BenchReport::Instance().SetJsonMode(HasFlag(argc, argv, "--json"));
    metrics_ = HasFlag(argc, argv, "--metrics");
    const char* trace = FlagValue(argc, argv, "--trace");
    if (trace != nullptr) {
      trace_file_ = *trace != '\0' ? trace : std::string(name) + "_trace.json";
      obs::TraceSession::Global().StartFull();
    } else if (HasFlag(argc, argv, "--audit")) {
      // No full trace requested but audits are on: arm the flight recorder so
      // a violation comes with the timeline that led up to it.
      obs::TraceSession::Global().StartRing();
    }
    if (obs::TraceSession::Global().enabled()) {
      obs::TraceSession::Global().InstallAuditDump();
    }
    const char* ledger = FlagValue(argc, argv, "--ledger");
    if (ledger != nullptr) {
      ledger_file_ =
          *ledger != '\0' ? ledger : std::string(name) + "_ledger.jsonl";
      obs::EpochLedger::Global().Enable();
    }
  }

  int Finish(int rc) const {
    obs::TraceSession& trace = obs::TraceSession::Global();
    if (!trace_file_.empty()) {
      std::FILE* f = std::fopen(trace_file_.c_str(), "w");
      if (f != nullptr) {
        const std::string json = trace.ExportChromeJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        if (!BenchReport::Instance().json_mode()) {
          std::printf("\ntrace: %zu events -> %s (open in chrome://tracing)\n",
                      trace.recorded(), trace_file_.c_str());
        }
      } else {
        std::fprintf(stderr, "cannot write trace file %s\n", trace_file_.c_str());
      }
    }
    if (metrics_ && !BenchReport::Instance().json_mode()) {
      std::printf("\n--- metrics ---\n%s",
                  obs::MetricsRegistry::Global().ExportTable().c_str());
      if (trace.recorded() > 0) {
        std::printf("\n--- spans ---\n%s", trace.ExportSummaryTable().c_str());
      }
    }
    if (!ledger_file_.empty()) {
      obs::EpochLedger& ledger = obs::EpochLedger::Global();
      if (ledger.WriteJsonl(ledger_file_)) {
        if (!BenchReport::Instance().json_mode()) {
          std::printf("\nledger: %zu records -> %s (analyze with "
                      "tcsim_analyze)\n",
                      ledger.recorded(), ledger_file_.c_str());
        }
      } else {
        std::fprintf(stderr, "cannot write ledger file %s\n",
                     ledger_file_.c_str());
      }
    }
    if (BenchReport::Instance().json_mode()) {
      BenchReport::Instance().AddExtra("telemetry",
                                       obs::MetricsRegistry::Global().ExportJson());
      BenchReport::Instance().EmitJson(rc);
    }
    return rc;
  }

 private:
  bool metrics_ = false;
  std::string trace_file_;
  std::string ledger_file_;
};

// True while --json is active: helpers keep recording but stop printing.
inline bool JsonQuiet() { return BenchReport::Instance().json_mode(); }

// Prints the run's event-dispatch digest. Two runs of the same scenario with
// the same seed must print the same value — the deterministic-replay check.
inline void PrintDigest(const Simulator& sim) {
  BenchReport::Instance().RecordDigest(sim.Digest());
  obs::CaptureSimulatorMetrics(sim);
  if (JsonQuiet()) {
    return;
  }
  std::printf("\nevent digest: %016llx\n",
              static_cast<unsigned long long>(sim.Digest()));
}

// Ends an audit pass: runs the final end-of-run audits, prints the summary,
// and returns the process exit code (0 = all audits pass).
inline int FinishAudit(InvariantRegistry* reg) {
  if (reg == nullptr) {
    return 0;
  }
  reg->FinishRun();
  BenchReport::Instance().RecordAudit(reg->ok());
  if (!JsonQuiet()) {
    std::printf("\n--- audit ---\n%s\n", reg->Summary().c_str());
  }
  return reg->ok() ? 0 : 1;
}

// Accumulator for benches that run several independent simulations: combines
// each run's digest (XOR — deterministic and order-independent) and audit
// outcome into one printout / exit code.
struct MultiRunAudit {
  bool enabled = false;
  int rc = 0;
  uint64_t digest = 0;

  explicit MultiRunAudit(bool audit) : enabled(audit) {}

  // Call once per finished simulation; `reg` may be null (no audit run).
  void Collect(const Simulator& sim, InvariantRegistry* reg = nullptr) {
    digest ^= sim.Digest();
    obs::CaptureSimulatorMetrics(sim);
    if (reg != nullptr) {
      rc |= FinishAudit(reg);
    }
  }

  // Prints the combined digest and returns the exit code.
  int Finish() const {
    BenchReport::Instance().RecordDigest(digest);
    if (!JsonQuiet()) {
      std::printf("\nevent digest (combined): %016llx\n",
                  static_cast<unsigned long long>(digest));
    }
    return rc;
  }
};

inline void PrintHeader(const std::string& id, const std::string& title) {
  BenchReport::Instance().RecordHeader(id, title);
  if (JsonQuiet()) {
    return;
  }
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void PrintSection(const std::string& name) {
  BenchReport::Instance().RecordSection(name);
  if (JsonQuiet()) {
    return;
  }
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void PrintRow(const std::string& label, double paper, double measured,
                     const std::string& unit) {
  BenchReport::Instance().RecordMetric(label, true, paper, measured, unit);
  if (JsonQuiet()) {
    return;
  }
  std::printf("%-44s paper: %10.3f %-8s measured: %10.3f %s\n", label.c_str(), paper,
              unit.c_str(), measured, unit.c_str());
}

inline void PrintValue(const std::string& label, double value, const std::string& unit) {
  BenchReport::Instance().RecordMetric(label, false, 0.0, value, unit);
  if (JsonQuiet()) {
    return;
  }
  std::printf("%-44s %10.3f %s\n", label.c_str(), value, unit.c_str());
}

inline void PrintNote(const std::string& note) {
  BenchReport::Instance().RecordNote(note);
  if (JsonQuiet()) {
    return;
  }
  std::printf("note: %s\n", note.c_str());
}

// Prints a (time, value) series downsampled to at most `max_points` rows —
// the data behind a figure, reproducible with any plotting tool.
inline void PrintSeries(const std::string& name, const TimeSeries& series,
                        size_t max_points = 40) {
  const size_t stride = series.size() > max_points ? series.size() / max_points : 1;
  BenchReport::Instance().RecordSeries(name, series, stride);
  if (JsonQuiet()) {
    return;
  }
  std::printf("\nseries %s (t_seconds value), %zu points", name.c_str(), series.size());
  std::printf(stride > 1 ? ", downsampled x%zu:\n" : ":\n", stride);
  for (size_t i = 0; i < series.size(); i += stride) {
    std::printf("  %9.3f  %10.4f\n", ToSeconds(series.points()[i].time),
                series.points()[i].value);
  }
}

}  // namespace tcsim

#endif  // TCSIM_BENCH_BENCH_UTIL_H_
