// Shared output helpers for the figure/table reproduction harnesses.
//
// Every binary in bench/ regenerates one table or figure from the paper's
// evaluation (Section 7) and prints (a) the paper's reported values, (b) the
// values measured in this reproduction, in a stable plain-text format that
// EXPERIMENTS.md quotes.

#ifndef TCSIM_BENCH_BENCH_UTIL_H_
#define TCSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>

#include "src/sim/invariants.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace tcsim {

// True when `flag` (e.g. "--audit") appears among the arguments.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

// Prints the run's event-dispatch digest. Two runs of the same scenario with
// the same seed must print the same value — the deterministic-replay check.
inline void PrintDigest(const Simulator& sim) {
  std::printf("\nevent digest: %016llx\n",
              static_cast<unsigned long long>(sim.Digest()));
}

// Ends an audit pass: runs the final end-of-run audits, prints the summary,
// and returns the process exit code (0 = all audits pass).
inline int FinishAudit(InvariantRegistry* reg) {
  if (reg == nullptr) {
    return 0;
  }
  reg->FinishRun();
  std::printf("\n--- audit ---\n%s\n", reg->Summary().c_str());
  return reg->ok() ? 0 : 1;
}

// Accumulator for benches that run several independent simulations: combines
// each run's digest (XOR — deterministic and order-independent) and audit
// outcome into one printout / exit code.
struct MultiRunAudit {
  bool enabled = false;
  int rc = 0;
  uint64_t digest = 0;

  explicit MultiRunAudit(bool audit) : enabled(audit) {}

  // Call once per finished simulation; `reg` may be null (no audit run).
  void Collect(const Simulator& sim, InvariantRegistry* reg = nullptr) {
    digest ^= sim.Digest();
    if (reg != nullptr) {
      rc |= FinishAudit(reg);
    }
  }

  // Prints the combined digest and returns the exit code.
  int Finish() const {
    std::printf("\nevent digest (combined): %016llx\n",
                static_cast<unsigned long long>(digest));
    return rc;
  }
};

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void PrintSection(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void PrintRow(const std::string& label, double paper, double measured,
                     const std::string& unit) {
  std::printf("%-44s paper: %10.3f %-8s measured: %10.3f %s\n", label.c_str(), paper,
              unit.c_str(), measured, unit.c_str());
}

inline void PrintValue(const std::string& label, double value, const std::string& unit) {
  std::printf("%-44s %10.3f %s\n", label.c_str(), value, unit.c_str());
}

inline void PrintNote(const std::string& note) { std::printf("note: %s\n", note.c_str()); }

// Prints a (time, value) series downsampled to at most `max_points` rows —
// the data behind a figure, reproducible with any plotting tool.
inline void PrintSeries(const std::string& name, const TimeSeries& series,
                        size_t max_points = 40) {
  std::printf("\nseries %s (t_seconds value), %zu points", name.c_str(), series.size());
  const size_t stride = series.size() > max_points ? series.size() / max_points : 1;
  std::printf(stride > 1 ? ", downsampled x%zu:\n" : ":\n", stride);
  for (size_t i = 0; i < series.size(); i += stride) {
    std::printf("  %9.3f  %10.4f\n", ToSeconds(series.points()[i].time),
                series.points()[i].value);
  }
}

}  // namespace tcsim

#endif  // TCSIM_BENCH_BENCH_UTIL_H_
