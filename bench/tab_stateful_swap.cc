// Section 7.2 (text results): stateful swapping performance.
//
// Paper setup: a single-node experiment swapped in and out four times
// consecutively; each swapped-in session generates 275 MB of disk data;
// node state travels over the 100 Mbps control network to the file server.
// Paper results:
//   - initial swap-in: 8 s with the golden image cached, +60 s without;
//   - subsequent swap-ins grow past 150 s by the fourth iteration without
//     the lazy optimisation, but stay flat at ~35 s with it;
//   - swap-outs stay constant at ~60 s (same new data per session);
//   - a disk-intensive workload during eager swap-out adds ~20% (pre-copied
//     blocks get overwritten and re-sent, and the pre-copy is rate-limited).

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/diskbench.h"
#include "src/emulab/experiment.h"
#include "src/emulab/experiment_spec.h"
#include "src/emulab/testbed.h"
#include "src/repo/checkpoint_repo.h"
#include "src/sim/simulator.h"

namespace tcsim {
namespace {

constexpr uint64_t kSessionDataBytes = 275ull * 1024 * 1024;

struct CycleTimes {
  std::vector<double> swap_in_s;
  std::vector<double> swap_out_s;
  bool repo_verified = true;
};

// Runs four swap cycles; returns per-cycle durations. When `repo` is
// non-null, node state is persisted through the durable checkpoint
// repository on every swap-out and verified against it on every swap-in.
CycleTimes RunCycles(bool lazy, bool disk_intensive_during_swapout,
                     MultiRunAudit* audit, CheckpointRepo* repo = nullptr) {
  Simulator sim;
  Testbed testbed(&sim, 7);
  if (repo != nullptr) {
    testbed.AttachRepository(repo);
  }
  ExperimentSpec spec("swap");
  spec.AddNode("pc1");
  Experiment* experiment = testbed.CreateExperiment(spec);
  experiment->SwapIn(true, nullptr);
  sim.RunUntil(sim.Now() + 30 * kSecond);
  ExperimentNode* node = experiment->node("pc1");

  std::unique_ptr<InvariantRegistry> reg;
  if (audit->enabled) {
    reg = std::make_unique<InvariantRegistry>(&sim);
    experiment->RegisterInvariants(reg.get());
    reg->StartPeriodic(kSecond);
  }

  CycleTimes times;
  uint64_t next_area = 100'000;
  for (int cycle = 0; cycle < 4; ++cycle) {
    // The session's workload: write 275 MB of new data.
    FileCopyApp::Params wp;
    wp.total_bytes = kSessionDataBytes;
    wp.start_block = next_area;
    next_area += kSessionDataBytes / kBlockSize + 1024;
    auto writer = std::make_shared<FileCopyApp>(node, wp);
    bool wrote = false;
    writer->Start([&] { wrote = true; });
    const SimTime write_deadline = sim.Now() + 3600 * kSecond;
    while (!wrote && sim.Now() < write_deadline) {
      sim.RunUntil(sim.Now() + kSecond);
    }

    // Optionally keep the disk busy during the swap-out itself. The load
    // continuously rewrites the session's own data, so pre-copied blocks are
    // dirtied again and must be sent twice (the paper's stated mechanism).
    bool out = false;
    auto stop_rewriting = std::make_shared<bool>(false);
    if (disk_intensive_during_swapout) {
      // Self-owning rewrite loop (heap state: it may outlive this scope by a
      // callback or two after the stop flag is set).
      auto loop = std::make_shared<std::function<void()>>();
      *loop = [node, wp, stop_rewriting, loop] {
        if (*stop_rewriting) {
          return;
        }
        FileCopyApp::Params bp;
        bp.total_bytes = 64ull * 1024 * 1024;
        bp.start_block = wp.start_block;  // overwrite, don't grow the delta
        auto app = std::make_shared<FileCopyApp>(node, bp);
        app->Start([app, loop] { (*loop)(); });
      };
      (*loop)();
    }

    SwapRecord out_rec;
    experiment->StatefulSwapOut(/*eager_precopy=*/true, [&](const SwapRecord& rec) {
      out_rec = rec;
      out = true;
    });
    const SimTime out_deadline = sim.Now() + 3600 * kSecond;
    while (!out && sim.Now() < out_deadline) {
      sim.RunUntil(sim.Now() + kSecond);
    }
    *stop_rewriting = true;
    times.swap_out_s.push_back(ToSeconds(out_rec.duration()));
    times.repo_verified = times.repo_verified && out_rec.repo_verified;

    bool in = false;
    SwapRecord in_rec;
    experiment->StatefulSwapIn(lazy, [&](const SwapRecord& rec) {
      in_rec = rec;
      in = true;
    });
    const SimTime in_deadline = sim.Now() + 3600 * kSecond;
    while (!in && sim.Now() < in_deadline) {
      sim.RunUntil(sim.Now() + kSecond);
    }
    times.swap_in_s.push_back(ToSeconds(in_rec.duration()));
    times.repo_verified = times.repo_verified && in_rec.repo_verified;
    // Sessions are long enough that the lazy background copy-in finishes
    // before the next swap-out (as in the paper's runs).
    const SimTime drain_deadline = sim.Now() + 3600 * kSecond;
    while (node->mirror().pending_blocks() > 0 && sim.Now() < drain_deadline) {
      sim.RunUntil(sim.Now() + kSecond);
    }
    sim.RunUntil(sim.Now() + 5 * kSecond);
  }
  audit->Collect(sim, reg.get());
  return times;
}

// Repeats the lazy swap cycles with a durable checkpoint repository attached
// to the testbed: every swap-out persists node state through the repository
// and every swap-in verifies the persisted image against the in-memory path.
// Reports the repository's I/O and dedup accounting.
int RunRepoBacked(MultiRunAudit* audit) {
  namespace fs = std::filesystem;
  PrintSection("repository-backed stateful swap (lazy)");
  const fs::path dir = fs::temp_directory_path() / "tcsim_bench_swap_repo";
  std::error_code ec;
  fs::remove_all(dir, ec);
  std::string err;
  std::unique_ptr<CheckpointRepo> repo =
      CheckpointRepo::Open(dir.string(), RepoOptions{}, &err);
  if (repo == nullptr) {
    std::fprintf(stderr, "tab_stateful_swap: cannot open repository: %s\n",
                 err.c_str());
    return 1;
  }

  const CycleTimes cycles =
      RunCycles(/*lazy=*/true, /*disk_intensive_during_swapout=*/false, audit,
                repo.get());
  constexpr double kMiB = 1024.0 * 1024.0;
  const double written_mb = static_cast<double>(repo->bytes_written()) / kMiB;
  const double read_mb = static_cast<double>(repo->bytes_read()) / kMiB;
  const double dedup =
      repo->physical_put_bytes() > 0
          ? static_cast<double>(repo->logical_put_bytes()) /
                static_cast<double>(repo->physical_put_bytes())
          : 1.0;

  PrintValue("4th-cycle lazy swap-in (repo-backed)", cycles.swap_in_s.back(),
             "s");
  PrintValue("repo bytes written", written_mb, "MB");
  PrintValue("repo bytes read", read_mb, "MB");
  PrintValue("repo dedup ratio (logical/physical)", dedup, "x");
  PrintValue("repo live images", static_cast<double>(repo->live_image_count()),
             "images");
  PrintNote(cycles.repo_verified
                ? "every swap-in verified byte-identical against the repository"
                : "REPO VERIFICATION FAILED: persisted image diverged");

  char extra[512];
  std::snprintf(extra, sizeof extra,
                "{\"bytes_written\": %llu, \"bytes_read\": %llu, "
                "\"logical_put_bytes\": %llu, \"physical_put_bytes\": %llu, "
                "\"dedup_ratio\": %.6g, \"verified\": %s}",
                static_cast<unsigned long long>(repo->bytes_written()),
                static_cast<unsigned long long>(repo->bytes_read()),
                static_cast<unsigned long long>(repo->logical_put_bytes()),
                static_cast<unsigned long long>(repo->physical_put_bytes()),
                dedup, cycles.repo_verified ? "true" : "false");
  BenchReport::Instance().AddExtra("repo", extra);

  const int rc = cycles.repo_verified ? 0 : 1;
  repo.reset();
  fs::remove_all(dir, ec);
  return rc;
}

int Run(bool audit_enabled, bool repo_enabled) {
  PrintHeader("Section 7.2", "stateful swapping performance (4 swap cycles)");
  MultiRunAudit audit(audit_enabled);

  PrintSection("initial swap-in");
  {
    Simulator sim;
    Testbed testbed(&sim, 7);
    ExperimentSpec spec("swap");
    spec.AddNode("pc1");
    Experiment* cached = testbed.CreateExperiment(spec);
    cached->SwapIn(true, nullptr);
    Experiment* uncached = testbed.CreateExperiment(spec);
    uncached->SwapIn(false, nullptr);
    sim.RunUntil(sim.Now() + 300 * kSecond);
    PrintRow("golden image cached", 8.0, ToSeconds(cached->swap_history().front().duration()),
             "s");
    PrintRow("golden image not cached", 68.0,
             ToSeconds(uncached->swap_history().front().duration()), "s");
  }

  const CycleTimes eager = RunCycles(/*lazy=*/false, false, &audit);
  const CycleTimes lazy = RunCycles(/*lazy=*/true, false, &audit);

  PrintSection("swap-in times per cycle (without lazy optimisation)");
  for (size_t i = 0; i < eager.swap_in_s.size(); ++i) {
    PrintValue("cycle " + std::to_string(i + 1) + " swap-in", eager.swap_in_s[i], "s");
  }
  PrintNote("paper: grows past 150 s by the 4th cycle (aggregated delta grows)");

  PrintSection("swap-in times per cycle (with lazy optimisation)");
  for (size_t i = 0; i < lazy.swap_in_s.size(); ++i) {
    PrintValue("cycle " + std::to_string(i + 1) + " swap-in", lazy.swap_in_s[i], "s");
  }
  PrintRow("4th-cycle lazy swap-in", 35.0, lazy.swap_in_s.back(), "s");

  PrintSection("swap-out times per cycle (eager pre-copy)");
  for (size_t i = 0; i < lazy.swap_out_s.size(); ++i) {
    PrintValue("cycle " + std::to_string(i + 1) + " swap-out", lazy.swap_out_s[i], "s");
  }
  PrintRow("steady swap-out", 60.0, lazy.swap_out_s.back(), "s");

  PrintSection("disk-intensive workload during eager swap-out");
  const CycleTimes busy =
      RunCycles(/*lazy=*/true, /*disk_intensive_during_swapout=*/true, &audit);
  const double slowdown =
      (busy.swap_out_s.back() / lazy.swap_out_s.back() - 1.0) * 100.0;
  PrintRow("swap-out slowdown under disk load", 20.0, slowdown, "%");
  PrintNote("pre-copied blocks overwritten during the copy are sent twice, and the");
  PrintNote("pre-copy rate limiter trades swap time for workload fidelity.");

  int rc = 0;
  if (repo_enabled) {
    rc |= RunRepoBacked(&audit);
  }
  return rc | audit.Finish();
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "tab_stateful_swap");
  return bm.Finish(tcsim::Run(tcsim::HasFlag(argc, argv, "--audit"),
                              tcsim::HasFlag(argc, argv, "--repo")));
}
