// Durable checkpoint repository persistence throughput (new subsystem, no
// paper counterpart — the paper's file server stores swapped-out state but
// reports no storage-layer numbers).
//
// Measures the wall-clock cost of the repository's four verbs over a
// synthetic delta chain shaped like a stateful-swap series: one full image
// followed by deltas that each rewrite a few chunks and pin the rest to the
// parent by CRC.
//
//   put          — chain ingestion (logical MB/s, dedup ratio)
//   materialize  — streaming read-back of every stored image (MB/s)
//   compact      — folding the whole chain into self-contained records
//   gc + reopen  — epoch rewrite, then recovery scan of the new epoch
//
// Every phase re-verifies byte identity of the chain head against the
// pre-phase materialization; a mismatch fails the bench.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/repo/checkpoint_repo.h"
#include "src/sim/digest.h"
#include "src/sim/image.h"

namespace tcsim {
namespace {

constexpr size_t kChunkBytes = 256 * 1024;
constexpr size_t kChunksPerImage = 16;
constexpr size_t kDeltaCount = 24;       // chain: 1 full + 24 deltas
constexpr size_t kRewritesPerDelta = 4;  // chunks changed per delta

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  const double s = std::chrono::duration<double>(dt).count();
  return s > 1e-9 ? s : 1e-9;
}

std::vector<uint8_t> ChunkPayload(uint64_t seed) {
  std::vector<uint8_t> bytes(kChunkBytes);
  uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (size_t i = 0; i < bytes.size(); i += 8) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::memcpy(&bytes[i], &x, 8);
  }
  return bytes;
}

std::string ChunkId(size_t index) { return "blk" + std::to_string(index); }

int Run() {
  namespace fs = std::filesystem;
  PrintHeader("repo-persist",
              "durable checkpoint repository put/materialize/compact/GC");

  const fs::path dir = fs::temp_directory_path() / "tcsim_bench_repo_persist";
  std::error_code ec;
  fs::remove_all(dir, ec);
  std::string err;
  std::unique_ptr<CheckpointRepo> repo =
      CheckpointRepo::Open(dir.string(), RepoOptions{}, &err);
  if (repo == nullptr) {
    std::fprintf(stderr, "tab_repo_persist: cannot open repository: %s\n",
                 err.c_str());
    return 1;
  }
  constexpr double kMiB = 1024.0 * 1024.0;
  int rc = 0;

  // The evolving guest state: chunk index -> current payload. Deltas rewrite
  // a sliding window of chunks and pin the rest to the parent by CRC.
  std::vector<std::vector<uint8_t>> state(kChunksPerImage);
  uint64_t next_seed = 1;
  for (size_t c = 0; c < kChunksPerImage; ++c) {
    state[c] = ChunkPayload(next_seed++);
  }
  std::vector<std::vector<uint8_t>> images;
  {
    CheckpointImageBuilder full;
    full.SetDeltaHeader(/*image_id=*/1, /*parent_id=*/0);
    for (size_t c = 0; c < kChunksPerImage; ++c) {
      full.AddChunk(ChunkId(c), state[c]);
    }
    images.push_back(full.Serialize());
  }
  for (size_t d = 1; d <= kDeltaCount; ++d) {
    CheckpointImageBuilder delta;
    delta.SetDeltaHeader(/*image_id=*/d + 1, /*parent_id=*/d);
    const size_t first = (d * kRewritesPerDelta) % kChunksPerImage;
    for (size_t c = 0; c < kChunksPerImage; ++c) {
      const bool rewritten =
          c >= first && c < first + kRewritesPerDelta;
      if (rewritten) {
        // Every third delta reverts its window to the base image's content —
        // repeated payloads that content addressing must store only once.
        state[c] = ChunkPayload(d % 3 == 0 ? c + 1 : next_seed++);
        delta.AddChunk(ChunkId(c), state[c]);
      } else {
        delta.AddDeltaChunk(ChunkId(c), Crc32(state[c]));
      }
    }
    images.push_back(delta.Serialize());
  }

  PrintSection("put (full image + delta chain)");
  std::vector<uint64_t> handles;
  const auto put_t0 = std::chrono::steady_clock::now();
  for (const std::vector<uint8_t>& bytes : images) {
    const uint64_t parent = handles.empty() ? 0 : handles.back();
    const uint64_t handle = repo->PutImage(bytes, parent);
    if (handle == 0) {
      std::fprintf(stderr, "tab_repo_persist: put rejected: %s\n",
                   repo->error().c_str());
      return 1;
    }
    handles.push_back(handle);
  }
  const double put_s = SecondsSince(put_t0);
  const double logical_mb =
      static_cast<double>(repo->logical_put_bytes()) / kMiB;
  const double physical_mb =
      static_cast<double>(repo->physical_put_bytes()) / kMiB;
  const double dedup = physical_mb > 0 ? logical_mb / physical_mb : 1.0;
  PrintValue("images put", static_cast<double>(handles.size()), "images");
  PrintValue("chain depth at head",
             static_cast<double>(repo->ChainDepth(handles.back())), "hops");
  PrintValue("logical bytes put", logical_mb, "MB");
  PrintValue("physical bytes appended", physical_mb, "MB");
  PrintValue("dedup ratio (logical/physical)", dedup, "x");
  PrintValue("put throughput", logical_mb / put_s, "MB/s");

  PrintSection("materialize (streaming read of every image)");
  const std::vector<uint8_t> head_before = repo->Materialize(handles.back());
  uint64_t materialized_bytes = 0;
  const auto mat_t0 = std::chrono::steady_clock::now();
  for (uint64_t handle : handles) {
    const std::vector<uint8_t> out = repo->Materialize(handle);
    if (out.empty()) {
      std::fprintf(stderr, "tab_repo_persist: materialize failed: %s\n",
                   repo->error().c_str());
      return 1;
    }
    materialized_bytes += out.size();
  }
  const double mat_s = SecondsSince(mat_t0);
  const double mat_mb = static_cast<double>(materialized_bytes) / kMiB;
  PrintValue("bytes materialized", mat_mb, "MB");
  PrintValue("materialize throughput", mat_mb / mat_s, "MB/s");

  PrintSection("compaction (fold every chain to depth 0)");
  const auto compact_t0 = std::chrono::steady_clock::now();
  const size_t folded = repo->CompactChains(/*max_depth=*/0);
  const double compact_s = SecondsSince(compact_t0);
  PrintValue("images folded", static_cast<double>(folded), "images");
  PrintValue("compaction time", compact_s * 1000.0, "ms");
  if (repo->Materialize(handles.back()) != head_before) {
    PrintNote("COMPACTION CHANGED MATERIALIZED BYTES");
    rc = 1;
  }

  PrintSection("GC (retire all but the chain head, rewrite the epoch)");
  for (size_t i = 0; i + 1 < handles.size(); ++i) {
    repo->RetireImage(handles[i]);
  }
  const auto gc_t0 = std::chrono::steady_clock::now();
  const CheckpointRepo::GcResult gc = repo->CollectGarbage();
  const double gc_s = SecondsSince(gc_t0);
  if (!gc.ok) {
    std::fprintf(stderr, "tab_repo_persist: GC failed: %s\n",
                 repo->error().c_str());
    return 1;
  }
  PrintValue("GC time", gc_s * 1000.0, "ms");
  PrintValue("bytes reclaimed", static_cast<double>(gc.reclaimed_bytes) / kMiB,
             "MB");
  PrintValue("live bytes after GC", static_cast<double>(gc.live_bytes) / kMiB,
             "MB");
  if (repo->Materialize(handles.back()) != head_before) {
    PrintNote("GC CHANGED MATERIALIZED BYTES");
    rc = 1;
  }

  PrintSection("reopen (recovery scan of the post-GC epoch)");
  repo.reset();
  const auto reopen_t0 = std::chrono::steady_clock::now();
  repo = CheckpointRepo::Open(dir.string(), RepoOptions{}, &err);
  const double reopen_s = SecondsSince(reopen_t0);
  if (repo == nullptr) {
    std::fprintf(stderr, "tab_repo_persist: reopen failed: %s\n", err.c_str());
    return 1;
  }
  PrintValue("reopen time (recovery scan)", reopen_s * 1000.0, "ms");
  PrintValue("live images after reopen",
             static_cast<double>(repo->live_image_count()), "images");
  const bool survivor_ok = repo->Materialize(handles.back()) == head_before;
  PrintNote(survivor_ok
                ? "chain head byte-identical through compaction, GC and reopen"
                : "REOPEN CHANGED MATERIALIZED BYTES");
  if (!survivor_ok) {
    rc = 1;
  }

  repo.reset();
  fs::remove_all(dir, ec);

  // --- Epoch spill sweep: concurrent writers × group commit --------------------
  //
  // Models the swap-out epoch: every host of a fat tree publishes one small
  // per-node image, and the fs server must make the whole epoch durable. The
  // per-put baseline commits each image with its own journal record and
  // flushes (the pre-batch repository path); the batched path stages the
  // same images — from 1, 2 or 4 writer threads — and group-commits once.
  // Gated: every variant's repository must materialize byte-identically to
  // the per-put oracle, the concurrent variants' files must be byte-identical
  // to the single-writer batch, and a cross-process reopen must reproduce the
  // same bytes.
  struct SpillShape {
    const char* key;
    size_t hosts;
    size_t chunks_per_host;
    size_t chunk_bytes;
  };
  const SpillShape shapes[] = {
      {"100", 100, 8, 4096},
      {"1k", 1000, 8, 4096},
  };
  double spill_metrics[2][3] = {};  // [shape] -> per-put, batch, speedup
  bool spill_verified = true;

  for (size_t s = 0; s < 2; ++s) {
    const SpillShape& shape = shapes[s];
    char title[96];
    std::snprintf(title, sizeof title,
                  "epoch spill (%zu hosts x %zu chunks x %zu KiB)", shape.hosts,
                  shape.chunks_per_host, shape.chunk_bytes / 1024);
    PrintSection(title);

    // Per-host images. A third of each host's chunks hold common content
    // (the same base system pages on every host) so dedup has real work.
    std::vector<std::shared_ptr<const std::vector<uint8_t>>> epoch;
    epoch.reserve(shape.hosts);
    uint64_t spill_logical = 0;
    for (size_t h = 0; h < shape.hosts; ++h) {
      CheckpointImageBuilder b;
      for (size_t c = 0; c < shape.chunks_per_host; ++c) {
        std::vector<uint8_t> payload(shape.chunk_bytes);
        const uint64_t seed = c < shape.chunks_per_host / 3
                                  ? 0xBA5Eull + c
                                  : 0xF00Dull + h * 131 + c;
        uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
        for (size_t i = 0; i < payload.size(); i += 8) {
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
          std::memcpy(&payload[i], &x, 8);
        }
        b.AddChunk(ChunkId(c), payload);
      }
      auto image = std::make_shared<const std::vector<uint8_t>>(b.Serialize());
      spill_logical += image->size();
      epoch.push_back(std::move(image));
    }
    const double spill_mb = static_cast<double>(spill_logical) / kMiB;

    auto fold_repo = [](CheckpointRepo* r) {
      Fnv1aDigest folded;
      for (const uint64_t handle : r->LiveHandles()) {
        const std::vector<uint8_t> out = r->Materialize(handle);
        folded.MixBytes(out.data(), out.size());
      }
      return folded.value();
    };
    auto file_bytes = [](const fs::path& p) {
      std::ifstream in(p, std::ios::binary);
      return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>());
    };

    // Baseline: the per-put path, one commit per image, inline hashing.
    const fs::path per_put_dir = dir.string() + "_spill_per_put";
    fs::remove_all(per_put_dir, ec);
    RepoOptions per_put_opts;
    per_put_opts.hash_threads = 0;
    std::unique_ptr<CheckpointRepo> per_put =
        CheckpointRepo::Open(per_put_dir.string(), per_put_opts, &err);
    if (per_put == nullptr) {
      std::fprintf(stderr, "tab_repo_persist: %s\n", err.c_str());
      return 1;
    }
    const auto per_put_t0 = std::chrono::steady_clock::now();
    for (const auto& image : epoch) {
      if (per_put->PutImage(*image) == 0) {
        std::fprintf(stderr, "tab_repo_persist: spill put rejected: %s\n",
                     per_put->error().c_str());
        return 1;
      }
    }
    const double per_put_s = SecondsSince(per_put_t0);
    const uint64_t oracle_fold = fold_repo(per_put.get());
    per_put.reset();
    PrintValue("per-put spill", spill_mb / per_put_s, "MB/s");

    // Batched: writers stage concurrently with sequence = host index, one
    // group commit for the whole epoch.
    double best_batch_s = 0.0;
    std::vector<uint8_t> batch_segment, batch_journal;
    for (const size_t writers : {size_t{1}, size_t{2}, size_t{4}}) {
      const fs::path batch_dir =
          dir.string() + "_spill_w" + std::to_string(writers);
      fs::remove_all(batch_dir, ec);
      std::unique_ptr<CheckpointRepo> batched =
          CheckpointRepo::Open(batch_dir.string(), RepoOptions{}, &err);
      if (batched == nullptr) {
        std::fprintf(stderr, "tab_repo_persist: %s\n", err.c_str());
        return 1;
      }
      const auto batch_t0 = std::chrono::steady_clock::now();
      auto batch = batched->BeginBatch();
      if (writers == 1) {
        for (size_t h = 0; h < epoch.size(); ++h) {
          batch->Stage(epoch[h], 0, 0, /*sequence=*/h + 1);
        }
      } else {
        std::vector<std::thread> stagers;
        for (size_t w = 0; w < writers; ++w) {
          stagers.emplace_back([&batch, &epoch, w, writers] {
            for (size_t h = w; h < epoch.size(); h += writers) {
              batch->Stage(epoch[h], 0, 0, /*sequence=*/h + 1);
            }
          });
        }
        for (std::thread& t : stagers) {
          t.join();
        }
      }
      const CheckpointRepo::BatchCommitResult result =
          batched->CommitBatch(std::move(batch));
      const double batch_s = SecondsSince(batch_t0);
      if (!result.ok) {
        std::fprintf(stderr, "tab_repo_persist: batch commit failed: %s\n",
                     result.error.c_str());
        return 1;
      }
      char row[64];
      std::snprintf(row, sizeof row, "batched spill, %zu writer%s", writers,
                    writers == 1 ? "" : "s");
      PrintValue(row, spill_mb / batch_s, "MB/s");
      if (best_batch_s == 0.0 || batch_s < best_batch_s) {
        best_batch_s = batch_s;
      }

      // Digest oracle: same materialized bytes as the per-put repository.
      if (fold_repo(batched.get()) != oracle_fold) {
        PrintNote("BATCHED SPILL DIVERGED FROM THE PER-PUT ORACLE");
        spill_verified = false;
      }
      batched.reset();
      // Determinism: every writer count produces the same files; reopen
      // (a fresh process) sees the same bytes and can materialize them.
      const std::vector<uint8_t> seg = file_bytes(batch_dir / "segment.1");
      const std::vector<uint8_t> jnl = file_bytes(batch_dir / "journal.1");
      if (writers == 1) {
        batch_segment = seg;
        batch_journal = jnl;
      } else if (seg != batch_segment || jnl != batch_journal) {
        PrintNote("CONCURRENT STAGERS CHANGED THE REPOSITORY BYTES");
        spill_verified = false;
      }
      std::unique_ptr<CheckpointRepo> reopened =
          CheckpointRepo::Open(batch_dir.string(), RepoOptions{}, &err);
      if (reopened == nullptr || fold_repo(reopened.get()) != oracle_fold) {
        PrintNote("REOPENED BATCH REPOSITORY DIVERGED");
        spill_verified = false;
      }
      reopened.reset();
      fs::remove_all(batch_dir, ec);
    }
    fs::remove_all(per_put_dir, ec);

    spill_metrics[s][0] = spill_mb / per_put_s;
    spill_metrics[s][1] = spill_mb / best_batch_s;
    spill_metrics[s][2] = per_put_s / best_batch_s;
    PrintValue("group-commit speedup", spill_metrics[s][2], "x");
  }
  PrintNote(spill_verified
                ? "spill sweep digest-identical across writers and reopen"
                : "SPILL SWEEP VERIFICATION FAILED");
  if (!spill_verified) {
    rc = 1;
  }

  char extra[1024];
  std::snprintf(
      extra, sizeof extra,
      "{\"put_mb_per_s\": %.6g, \"materialize_mb_per_s\": %.6g, "
      "\"compact_ms\": %.6g, \"gc_ms\": %.6g, \"reopen_ms\": %.6g, "
      "\"dedup_ratio\": %.6g, \"verified\": %s, "
      "\"spill_100_per_put_mb_per_s\": %.6g, "
      "\"spill_100_batch_mb_per_s\": %.6g, \"spill_100_speedup\": %.6g, "
      "\"spill_1k_per_put_mb_per_s\": %.6g, "
      "\"spill_1k_batch_mb_per_s\": %.6g, \"spill_1k_speedup\": %.6g, "
      "\"spill_verified\": %s}",
      logical_mb / put_s, mat_mb / mat_s, compact_s * 1000.0, gc_s * 1000.0,
      reopen_s * 1000.0, dedup, rc == 0 ? "true" : "false",
      spill_metrics[0][0], spill_metrics[0][1], spill_metrics[0][2],
      spill_metrics[1][0], spill_metrics[1][1], spill_metrics[1][2],
      spill_verified ? "true" : "false");
  BenchReport::Instance().AddExtra("repo_persist", extra);
  return rc;
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "tab_repo_persist");
  return bm.Finish(tcsim::Run());
}
