// Durable checkpoint repository persistence throughput (new subsystem, no
// paper counterpart — the paper's file server stores swapped-out state but
// reports no storage-layer numbers).
//
// Measures the wall-clock cost of the repository's four verbs over a
// synthetic delta chain shaped like a stateful-swap series: one full image
// followed by deltas that each rewrite a few chunks and pin the rest to the
// parent by CRC.
//
//   put          — chain ingestion (logical MB/s, dedup ratio)
//   materialize  — streaming read-back of every stored image (MB/s)
//   compact      — folding the whole chain into self-contained records
//   gc + reopen  — epoch rewrite, then recovery scan of the new epoch
//
// Every phase re-verifies byte identity of the chain head against the
// pre-phase materialization; a mismatch fails the bench.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/repo/checkpoint_repo.h"
#include "src/sim/image.h"

namespace tcsim {
namespace {

constexpr size_t kChunkBytes = 256 * 1024;
constexpr size_t kChunksPerImage = 16;
constexpr size_t kDeltaCount = 24;       // chain: 1 full + 24 deltas
constexpr size_t kRewritesPerDelta = 4;  // chunks changed per delta

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  const double s = std::chrono::duration<double>(dt).count();
  return s > 1e-9 ? s : 1e-9;
}

std::vector<uint8_t> ChunkPayload(uint64_t seed) {
  std::vector<uint8_t> bytes(kChunkBytes);
  uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (size_t i = 0; i < bytes.size(); i += 8) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::memcpy(&bytes[i], &x, 8);
  }
  return bytes;
}

std::string ChunkId(size_t index) { return "blk" + std::to_string(index); }

int Run() {
  namespace fs = std::filesystem;
  PrintHeader("repo-persist",
              "durable checkpoint repository put/materialize/compact/GC");

  const fs::path dir = fs::temp_directory_path() / "tcsim_bench_repo_persist";
  std::error_code ec;
  fs::remove_all(dir, ec);
  std::string err;
  std::unique_ptr<CheckpointRepo> repo =
      CheckpointRepo::Open(dir.string(), RepoOptions{}, &err);
  if (repo == nullptr) {
    std::fprintf(stderr, "tab_repo_persist: cannot open repository: %s\n",
                 err.c_str());
    return 1;
  }
  constexpr double kMiB = 1024.0 * 1024.0;
  int rc = 0;

  // The evolving guest state: chunk index -> current payload. Deltas rewrite
  // a sliding window of chunks and pin the rest to the parent by CRC.
  std::vector<std::vector<uint8_t>> state(kChunksPerImage);
  uint64_t next_seed = 1;
  for (size_t c = 0; c < kChunksPerImage; ++c) {
    state[c] = ChunkPayload(next_seed++);
  }
  std::vector<std::vector<uint8_t>> images;
  {
    CheckpointImageBuilder full;
    full.SetDeltaHeader(/*image_id=*/1, /*parent_id=*/0);
    for (size_t c = 0; c < kChunksPerImage; ++c) {
      full.AddChunk(ChunkId(c), state[c]);
    }
    images.push_back(full.Serialize());
  }
  for (size_t d = 1; d <= kDeltaCount; ++d) {
    CheckpointImageBuilder delta;
    delta.SetDeltaHeader(/*image_id=*/d + 1, /*parent_id=*/d);
    const size_t first = (d * kRewritesPerDelta) % kChunksPerImage;
    for (size_t c = 0; c < kChunksPerImage; ++c) {
      const bool rewritten =
          c >= first && c < first + kRewritesPerDelta;
      if (rewritten) {
        // Every third delta reverts its window to the base image's content —
        // repeated payloads that content addressing must store only once.
        state[c] = ChunkPayload(d % 3 == 0 ? c + 1 : next_seed++);
        delta.AddChunk(ChunkId(c), state[c]);
      } else {
        delta.AddDeltaChunk(ChunkId(c), Crc32(state[c]));
      }
    }
    images.push_back(delta.Serialize());
  }

  PrintSection("put (full image + delta chain)");
  std::vector<uint64_t> handles;
  const auto put_t0 = std::chrono::steady_clock::now();
  for (const std::vector<uint8_t>& bytes : images) {
    const uint64_t parent = handles.empty() ? 0 : handles.back();
    const uint64_t handle = repo->PutImage(bytes, parent);
    if (handle == 0) {
      std::fprintf(stderr, "tab_repo_persist: put rejected: %s\n",
                   repo->error().c_str());
      return 1;
    }
    handles.push_back(handle);
  }
  const double put_s = SecondsSince(put_t0);
  const double logical_mb =
      static_cast<double>(repo->logical_put_bytes()) / kMiB;
  const double physical_mb =
      static_cast<double>(repo->physical_put_bytes()) / kMiB;
  const double dedup = physical_mb > 0 ? logical_mb / physical_mb : 1.0;
  PrintValue("images put", static_cast<double>(handles.size()), "images");
  PrintValue("chain depth at head",
             static_cast<double>(repo->ChainDepth(handles.back())), "hops");
  PrintValue("logical bytes put", logical_mb, "MB");
  PrintValue("physical bytes appended", physical_mb, "MB");
  PrintValue("dedup ratio (logical/physical)", dedup, "x");
  PrintValue("put throughput", logical_mb / put_s, "MB/s");

  PrintSection("materialize (streaming read of every image)");
  const std::vector<uint8_t> head_before = repo->Materialize(handles.back());
  uint64_t materialized_bytes = 0;
  const auto mat_t0 = std::chrono::steady_clock::now();
  for (uint64_t handle : handles) {
    const std::vector<uint8_t> out = repo->Materialize(handle);
    if (out.empty()) {
      std::fprintf(stderr, "tab_repo_persist: materialize failed: %s\n",
                   repo->error().c_str());
      return 1;
    }
    materialized_bytes += out.size();
  }
  const double mat_s = SecondsSince(mat_t0);
  const double mat_mb = static_cast<double>(materialized_bytes) / kMiB;
  PrintValue("bytes materialized", mat_mb, "MB");
  PrintValue("materialize throughput", mat_mb / mat_s, "MB/s");

  PrintSection("compaction (fold every chain to depth 0)");
  const auto compact_t0 = std::chrono::steady_clock::now();
  const size_t folded = repo->CompactChains(/*max_depth=*/0);
  const double compact_s = SecondsSince(compact_t0);
  PrintValue("images folded", static_cast<double>(folded), "images");
  PrintValue("compaction time", compact_s * 1000.0, "ms");
  if (repo->Materialize(handles.back()) != head_before) {
    PrintNote("COMPACTION CHANGED MATERIALIZED BYTES");
    rc = 1;
  }

  PrintSection("GC (retire all but the chain head, rewrite the epoch)");
  for (size_t i = 0; i + 1 < handles.size(); ++i) {
    repo->RetireImage(handles[i]);
  }
  const auto gc_t0 = std::chrono::steady_clock::now();
  const CheckpointRepo::GcResult gc = repo->CollectGarbage();
  const double gc_s = SecondsSince(gc_t0);
  if (!gc.ok) {
    std::fprintf(stderr, "tab_repo_persist: GC failed: %s\n",
                 repo->error().c_str());
    return 1;
  }
  PrintValue("GC time", gc_s * 1000.0, "ms");
  PrintValue("bytes reclaimed", static_cast<double>(gc.reclaimed_bytes) / kMiB,
             "MB");
  PrintValue("live bytes after GC", static_cast<double>(gc.live_bytes) / kMiB,
             "MB");
  if (repo->Materialize(handles.back()) != head_before) {
    PrintNote("GC CHANGED MATERIALIZED BYTES");
    rc = 1;
  }

  PrintSection("reopen (recovery scan of the post-GC epoch)");
  repo.reset();
  const auto reopen_t0 = std::chrono::steady_clock::now();
  repo = CheckpointRepo::Open(dir.string(), RepoOptions{}, &err);
  const double reopen_s = SecondsSince(reopen_t0);
  if (repo == nullptr) {
    std::fprintf(stderr, "tab_repo_persist: reopen failed: %s\n", err.c_str());
    return 1;
  }
  PrintValue("reopen time (recovery scan)", reopen_s * 1000.0, "ms");
  PrintValue("live images after reopen",
             static_cast<double>(repo->live_image_count()), "images");
  const bool survivor_ok = repo->Materialize(handles.back()) == head_before;
  PrintNote(survivor_ok
                ? "chain head byte-identical through compaction, GC and reopen"
                : "REOPEN CHANGED MATERIALIZED BYTES");
  if (!survivor_ok) {
    rc = 1;
  }

  char extra[512];
  std::snprintf(
      extra, sizeof extra,
      "{\"put_mb_per_s\": %.6g, \"materialize_mb_per_s\": %.6g, "
      "\"compact_ms\": %.6g, \"gc_ms\": %.6g, \"reopen_ms\": %.6g, "
      "\"dedup_ratio\": %.6g, \"verified\": %s}",
      logical_mb / put_s, mat_mb / mat_s, compact_s * 1000.0, gc_s * 1000.0,
      reopen_s * 1000.0, dedup, rc == 0 ? "true" : "false");
  BenchReport::Instance().AddExtra("repo_persist", extra);

  repo.reset();
  fs::remove_all(dir, ec);
  return rc;
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "tab_repo_persist");
  return bm.Finish(tcsim::Run());
}
