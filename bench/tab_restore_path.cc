// Restore-path cost: image-based rollback vs deterministic re-execution.
//
// The universal checkpoint-image layer makes rollback O(image): a fresh
// simulator is built and overwritten from the target checkpoint's composite
// image, instead of re-executing the experiment from t=0. This harness
// measures the host wall-clock cost of both restore paths for every
// checkpoint of a recorded run. Re-execution cost grows with how deep into
// the run the checkpoint is; image restore stays flat — that gap is the
// point of the layer.
//
//   $ ./build/bench/tab_restore_path [--json]
//
// --json emits one machine-readable object (for trend tracking) instead of
// the human-readable table.

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/timetravel/basic_run.h"
#include "src/timetravel/checkpoint_tree.h"

using namespace tcsim;

namespace {

double WallSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

struct Row {
  int id = 0;
  double time_s = 0;
  uint64_t image_bytes = 0;
  bool restore_ok = false;
  bool reexec_ok = false;
  double restore_image_wall_s = 0;
  double reexec_wall_s = 0;
};

}  // namespace

int main(int argc, char** argv) {
  BenchMain bm(argc, argv, "tab_restore_path");
  const bool json = JsonQuiet();

  TimeTravelTree tree([] {
    BasicExperimentRun::Params params;
    params.seed = 11;
    return std::make_unique<BasicExperimentRun>(params);
  });
  const std::vector<int> ids = tree.RecordOriginalRun(30 * kSecond, 3 * kSecond);

  std::vector<Row> rows;
  for (int id : ids) {
    Row row;
    row.id = id;
    row.time_s = ToSeconds(tree.tree()[id].time);
    row.image_bytes = tree.tree()[id].image_bytes;
    // Both paths build a fresh run and reconstruct the checkpoint's state,
    // verifying the digest against the recording — an apples-to-apples
    // "rollback and check" operation.
    row.restore_image_wall_s =
        WallSeconds([&] { row.restore_ok = tree.VerifyImageRestore(id); });
    row.reexec_wall_s =
        WallSeconds([&] { row.reexec_ok = tree.VerifyDeterministicReplay(id); });
    rows.push_back(row);
  }

  bool all_ok = true;
  for (const Row& row : rows) {
    all_ok = all_ok && row.restore_ok && row.reexec_ok;
  }

  if (json) {
    std::string ckpts = "[\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      char buf[320];
      std::snprintf(buf, sizeof buf,
                    "    {\"id\": %d, \"t_s\": %.3f, \"image_bytes\": %llu, "
                    "\"restore_image_wall_s\": %.6f, \"reexec_wall_s\": %.6f, "
                    "\"speedup\": %.2f, \"digests_match\": %s}%s\n",
                    row.id, row.time_s,
                    static_cast<unsigned long long>(row.image_bytes),
                    row.restore_image_wall_s, row.reexec_wall_s,
                    row.restore_image_wall_s > 0
                        ? row.reexec_wall_s / row.restore_image_wall_s
                        : 0.0,
                    row.restore_ok && row.reexec_ok ? "true" : "false",
                    i + 1 < rows.size() ? "," : "");
      ckpts += buf;
    }
    ckpts += "  ]";
    BenchReport::Instance().AddExtra("checkpoints", ckpts);
    BenchReport::Instance().AddExtra("all_digests_match", all_ok ? "true" : "false");
    return bm.Finish(all_ok ? 0 : 1);
  }

  std::printf("Restore path: image-based rollback vs re-execution from t=0\n");
  std::printf("(wall-clock on this host; re-execution grows with checkpoint "
              "depth, image restore stays flat)\n\n");
  std::printf("%4s  %8s  %10s  %14s  %12s  %8s  %s\n", "ckpt", "t (s)",
              "image(MB)", "restore-img(s)", "reexec(s)", "speedup", "digests");
  for (const Row& row : rows) {
    std::printf("%4d  %8.1f  %10.2f  %14.4f  %12.4f  %7.1fx  %s\n", row.id,
                row.time_s, static_cast<double>(row.image_bytes) / (1 << 20),
                row.restore_image_wall_s, row.reexec_wall_s,
                row.restore_image_wall_s > 0
                    ? row.reexec_wall_s / row.restore_image_wall_s
                    : 0.0,
                row.restore_ok && row.reexec_ok ? "match" : "MISMATCH");
  }
  std::printf("\nall digests %s\n", all_ok ? "match" : "MISMATCH");
  return bm.Finish(all_ok ? 0 : 1);
}
