// Ablation: the branching-storage design choices of Section 5.
//
//   redo-log vs read-before-write   — already Figure 8's Branch vs
//                                     Branch-Orig; re-measured here on a
//                                     random-write workload;
//   merge-time block reordering     — after a swap-out, the aggregated delta
//                                     is re-laid-out in logical order to
//                                     restore read locality; disabling it
//                                     leaves later sequential reads paying
//                                     scattered-slot seeks;
//   free-block elimination          — shrinks what swap-out ships and hence
//                                     swap time over the 100 Mbps control
//                                     network.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/storage/branch_store.h"
#include "src/storage/disk.h"

namespace tcsim {
namespace {

constexpr uint64_t kStoreBlocks = 1 << 21;  // 8 GB logical disk

// Writes `count` random 16-block extents, then merges (with or without
// reordering), then sequentially reads the written range back. Returns the
// read phase's duration.
SimTime MergeReorderReadTime(bool reorder, MultiRunAudit* audit) {
  Simulator sim;
  Disk disk(&sim, DiskParams{});
  BranchStore store(&disk, kStoreBlocks);
  Rng rng(17);

  // Random writes across a 2 GB span (so slots land in random order).
  std::vector<uint64_t> extents;
  for (int i = 0; i < 4096; ++i) {
    extents.push_back(static_cast<uint64_t>(rng.UniformInt(0, (1 << 19) - 16)) & ~15ull);
  }
  size_t next = 0;
  std::function<void()> write_next = [&] {
    if (next >= extents.size()) {
      return;
    }
    const uint64_t b = extents[next++];
    store.Write(b, std::vector<uint64_t>(16, b), write_next);
  };
  write_next();
  sim.Run();

  store.MergeCurrentIntoAggregated(reorder);

  // Sequential read of the whole written span.
  const SimTime read_start = sim.Now();
  uint64_t pos = 0;
  std::function<void()> read_next = [&] {
    if (pos >= (1 << 19)) {
      return;
    }
    const uint64_t b = pos;
    pos += 256;
    store.Read(b, 256, [&read_next](std::vector<uint64_t>) { read_next(); });
  };
  read_next();
  sim.Run();
  audit->Collect(sim);
  return sim.Now() - read_start;
}

// Random first-writes through the two write modes.
SimTime RandomWriteTime(BranchStore::WriteMode mode, MultiRunAudit* audit) {
  Simulator sim;
  Disk disk(&sim, DiskParams{});
  BranchStore store(&disk, kStoreBlocks, mode);
  Rng rng(23);
  int remaining = 4096;
  std::function<void()> write_next = [&] {
    if (remaining-- <= 0) {
      return;
    }
    const uint64_t b = static_cast<uint64_t>(rng.UniformInt(0, (1 << 20) - 16));
    store.Write(b, std::vector<uint64_t>(16, b), write_next);
  };
  write_next();
  sim.Run();
  audit->Collect(sim);
  return sim.Now();
}

int Run(bool audit_enabled) {
  PrintHeader("Ablation", "branching-storage design choices (Section 5)");
  // This bench exercises the storage layer alone (no clocks, NICs or guests),
  // so no layer audits apply; --audit still prints the combined run digest.
  MultiRunAudit audit(audit_enabled);

  PrintSection("redo log vs read-before-write (random 64 KB first-writes)");
  const SimTime redo = RandomWriteTime(BranchStore::WriteMode::kRedoLog, &audit);
  const SimTime rbw = RandomWriteTime(BranchStore::WriteMode::kReadBeforeWrite, &audit);
  PrintValue("redo log (ours)", ToSeconds(redo), "s");
  PrintValue("read-before-write (original LVM)", ToSeconds(rbw), "s");
  PrintValue("slowdown from read-before-write",
             (static_cast<double>(rbw) / static_cast<double>(redo) - 1.0) * 100.0, "%");

  PrintSection("merge-time reordering vs none (sequential read after merge)");
  const SimTime ordered = MergeReorderReadTime(/*reorder=*/true, &audit);
  const SimTime scattered = MergeReorderReadTime(/*reorder=*/false, &audit);
  PrintValue("read after reordered merge", ToSeconds(ordered), "s");
  PrintValue("read after unordered merge", ToSeconds(scattered), "s");
  PrintValue("reordering speedup",
             static_cast<double>(scattered) / static_cast<double>(ordered), "x");
  PrintNote("the paper reorders blocks during the offline delta merge precisely to");
  PrintNote("keep later sequential reads of the aggregated delta sequential on disk.");

  PrintSection("free-block elimination effect on swap-out transfer");
  // 490 MB of delta, 454 MB of it freed blocks, over the 100 Mbps control
  // network (12.5 MB/s).
  const double without_s = 490.0 / 12.5;
  const double with_s = 36.0 / 12.5;
  PrintValue("delta transfer without elimination", without_s, "s");
  PrintValue("delta transfer with elimination", with_s, "s");
  PrintValue("transfer time saved", without_s - with_s, "s");
  PrintNote("delta sizes from bench/tab_free_block_elim (measured, matches paper).");

  return audit.Finish();
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "ablation_storage");
  return bm.Finish(tcsim::Run(tcsim::HasFlag(argc, argv, "--audit")));
}
