// Figure 9: effect of background swap data transfer on guest disk I/O.
//
// Paper setup: a disk-intensive workload (copying a large file) measured in
// three scenarios — no swap activity, during a swap-in with lazy copy-in,
// and during a swap-out with eager pre-copy.
// Paper results: eager copy-out looks almost like the undisturbed run (+9%
// execution time); lazy copy-in is more intrusive (+19% execution time,
// -45% throughput) because its prefetcher is more aggressive than the
// rate-limited copy-out (a noted limitation of their rate limiter).

#include <cstdio>
#include <memory>
#include <set>

#include "bench/bench_util.h"
#include "src/apps/diskbench.h"
#include "src/guest/node.h"
#include "src/sim/simulator.h"

namespace tcsim {
namespace {

struct Outcome {
  double seconds = 0;
  double mean_mbps = 0;
  TimeSeries series;
};

enum class Scenario { kNoSwap, kLazyCopyIn, kEagerCopyOut };

Outcome RunScenario(Scenario scenario, MultiRunAudit* audit) {
  Simulator sim;
  NodeConfig cfg;
  cfg.name = "pc1";
  cfg.id = 1;
  // Lazy copy-in prefetch is more aggressive than eager copy-out (the
  // paper's rate-limiter limitation).
  cfg.mirror.sync_rate_bytes_per_sec =
      scenario == Scenario::kLazyCopyIn ? 15'000'000 : 4'000'000;
  ExperimentNode node(&sim, Rng(5), cfg);

  std::unique_ptr<InvariantRegistry> reg;
  if (audit->enabled) {
    reg = std::make_unique<InvariantRegistry>(&sim);
    node.RegisterInvariants(reg.get());
    reg->StartPeriodic(kSecond);
  }

  if (scenario == Scenario::kLazyCopyIn) {
    // A previous session left a large aggregated delta on the file server;
    // it streams in (and lands on the local disk) while the workload runs.
    std::set<uint64_t> remote;
    for (uint64_t b = 0; b < 32768; ++b) {  // 128 MB of delta blocks
      remote.insert(1'000'000 + b);
    }
    node.mirror().BeginLazyCopyIn(std::move(remote), nullptr);
  }

  FileCopyApp::Params params;
  params.total_bytes = 1ull * 1024 * 1024 * 1024;
  FileCopyApp app(&node, params);
  bool done = false;
  app.Start([&] { done = true; });

  if (scenario == Scenario::kEagerCopyOut) {
    // The swap-out pre-copy starts early in the run (the paper triggers it
    // 60 s into a longer copy) and pushes the accumulating delta to the
    // file server.
    sim.Schedule(3 * kSecond, [&] {
      node.mirror().BeginEagerCopyOut(node.store().LiveDeltaBlockSet(), nullptr);
    });
  }

  while (!done && sim.Now() < 3600 * kSecond) {
    sim.RunUntil(sim.Now() + kSecond);
  }

  Outcome out;
  out.seconds = ToSeconds(app.elapsed());
  out.mean_mbps = static_cast<double>(params.total_bytes) / (1 << 20) / out.seconds;
  out.series = app.ThroughputSeries();
  audit->Collect(sim, reg.get());
  return out;
}

int Run(bool audit_enabled) {
  PrintHeader("Figure 9", "background swap transfer vs guest disk throughput");
  MultiRunAudit audit(audit_enabled);

  const Outcome none = RunScenario(Scenario::kNoSwap, &audit);
  const Outcome lazy = RunScenario(Scenario::kLazyCopyIn, &audit);
  const Outcome eager = RunScenario(Scenario::kEagerCopyOut, &audit);

  PrintSection("execution time of the 1 GB file copy");
  PrintValue("no swap activity", none.seconds, "s");
  PrintValue("during lazy copy-in", lazy.seconds, "s");
  PrintValue("during eager copy-out", eager.seconds, "s");

  PrintSection("headline comparisons");
  PrintRow("lazy copy-in execution-time increase", 19.0,
           (lazy.seconds / none.seconds - 1.0) * 100.0, "%");
  // The paper's -45% is the drop *while the copy-in is active*; measure the
  // first third of the run (the prefetch window).
  const double lazy_window =
      lazy.series.MeanInWindow(0, FromSeconds(lazy.seconds / 3.0));
  const double none_window =
      none.series.MeanInWindow(0, FromSeconds(none.seconds / 3.0));
  PrintRow("lazy copy-in throughput drop (during copy-in)", 45.0,
           (1.0 - lazy_window / none_window) * 100.0, "%");
  PrintRow("eager copy-out execution-time increase", 9.0,
           (eager.seconds / none.seconds - 1.0) * 100.0, "%");

  PrintSeries("fig9.no_swap_MBps", none.series, 30);
  PrintSeries("fig9.lazy_copy_in_MBps", lazy.series, 30);
  PrintSeries("fig9.eager_copy_out_MBps", eager.series, 30);

  return audit.Finish();
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "fig9_background_transfer");
  return bm.Finish(tcsim::Run(tcsim::HasFlag(argc, argv, "--audit")));
}
