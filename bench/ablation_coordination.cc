// Ablation: which parts of the checkpoint design buy transparency?
//
// The same iperf scenario (1 Gbps shaped link, one checkpoint mid-stream)
// under four strategies:
//   scheduled     — the paper's design: clock-scheduled suspend, barrier,
//                   synchronized resume, delay-node capture;
//   immediate     — event-driven "checkpoint now" notifications: skew is
//                   bounded by network/processing jitter instead of clock
//                   error (Section 4.3's rejected-by-default alternative);
//   uncoordinated — each node checkpoints on its own (staggered by up to
//                   250 ms) and resumes as soon as its own save completes:
//                   the classical non-coordinated checkpoint (Section 3.2);
//   baseline-time — coordinated, but without time virtualization: the guest
//                   sees the downtime (non-transparent local checkpoints).

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/iperf.h"
#include "src/emulab/experiment.h"
#include "src/emulab/experiment_spec.h"
#include "src/emulab/testbed.h"
#include "src/sim/simulator.h"

namespace tcsim {
namespace {

enum class Mode { kScheduled, kImmediate, kUncoordinated, kBaselineTime };

struct Outcome {
  double skew_us = 0;
  double max_gap_us = 0;
  double mean_gap_us = 0;
  uint64_t retransmits = 0;
  uint64_t timeouts = 0;
  uint64_t dup_acks = 0;
  bool completed = false;
};

Outcome Run(Mode mode, MultiRunAudit* audit) {
  Simulator sim;
  TestbedConfig cfg;
  if (mode == Mode::kBaselineTime) {
    cfg.checkpoint_policy.transparent_time = false;
    cfg.checkpoint_policy.live_precopy = false;  // make the leak worst-case
  }
  Testbed testbed(&sim, 42, cfg);
  ExperimentSpec spec("pair");
  spec.AddNode("client");
  spec.AddNode("server");
  spec.AddLink("client", "server", 1'000'000'000, 200 * kMicrosecond);
  Experiment* experiment = testbed.CreateExperiment(spec);
  experiment->SwapIn(true, nullptr);
  sim.RunUntil(sim.Now() + 10 * kSecond);

  std::unique_ptr<InvariantRegistry> reg;
  if (audit->enabled) {
    reg = std::make_unique<InvariantRegistry>(&sim);
    experiment->RegisterInvariants(reg.get());
    reg->StartPeriodic(100 * kMillisecond);
  }

  IperfApp::Params params;
  params.total_bytes = 512ull * 1024 * 1024;
  IperfApp iperf(experiment->node("client"), experiment->node("server"), params);
  bool done = false;
  iperf.Start([&] { done = true; });

  Outcome out;
  sim.Schedule(kSecond, [&] {
    switch (mode) {
      case Mode::kScheduled:
      case Mode::kBaselineTime:
        experiment->coordinator().CheckpointScheduled(
            200 * kMillisecond, [&](const DistributedCheckpointRecord& rec) {
              out.skew_us = ToMicroseconds(rec.SuspendSkew());
            });
        break;
      case Mode::kImmediate:
        experiment->coordinator().CheckpointImmediate(
            [&](const DistributedCheckpointRecord& rec) {
              out.skew_us = ToMicroseconds(rec.SuspendSkew());
            });
        break;
      case Mode::kUncoordinated: {
        // Staggered, independent checkpoints; each resumes on its own.
        auto start = [&](CheckpointParticipant* p, SimTime stagger) {
          sim.Schedule(stagger, [&sim, p] {
            p->CheckpointAtLocal(p->clock().LocalNow(),
                                 [&sim, p](const LocalCheckpointRecord&) {
                                   p->ResumeAtLocal(p->clock().LocalNow());
                                 });
          });
        };
        start(experiment->engine("client"), 0);
        start(experiment->engine("server"), 250 * kMillisecond);
        start(experiment->delay_participant(0), 120 * kMillisecond);
        // Skew is the stagger itself.
        out.skew_us = 250'000;
        break;
      }
    }
  });

  while (!done && sim.Now() < 300 * kSecond) {
    sim.RunUntil(sim.Now() + kSecond);
  }
  out.completed = done;

  const Samples gaps = iperf.InterPacketGapsUs();
  out.max_gap_us = gaps.Summarize().max;
  out.mean_gap_us = gaps.Summarize().mean;
  out.retransmits = iperf.sender_stats().retransmits;
  out.timeouts = iperf.sender_stats().timeouts;
  out.dup_acks = iperf.sender_stats().dup_acks_received;
  audit->Collect(sim, reg.get());
  return out;
}

void Print(const char* name, const Outcome& o) {
  BenchReport& rep = BenchReport::Instance();
  const std::string prefix = std::string(name) + ".";
  rep.RecordMetric(prefix + "skew", false, 0, o.skew_us, "us");
  rep.RecordMetric(prefix + "max_gap", false, 0, o.max_gap_us, "us");
  rep.RecordMetric(prefix + "mean_gap", false, 0, o.mean_gap_us, "us");
  rep.RecordMetric(prefix + "retransmits", false, 0,
                   static_cast<double>(o.retransmits), "");
  rep.RecordMetric(prefix + "timeouts", false, 0,
                   static_cast<double>(o.timeouts), "");
  rep.RecordMetric(prefix + "dup_acks", false, 0,
                   static_cast<double>(o.dup_acks), "");
  rep.RecordMetric(prefix + "completed", false, 0, o.completed ? 1 : 0, "");
  if (JsonQuiet()) {
    return;
  }
  std::printf("%-14s skew %9.1f us   max-gap %10.1f us   mean-gap %6.2f us   "
              "retx %4lu  timeouts %3lu  dupacks %5lu  completed %d\n",
              name, o.skew_us, o.max_gap_us, o.mean_gap_us,
              static_cast<unsigned long>(o.retransmits),
              static_cast<unsigned long>(o.timeouts),
              static_cast<unsigned long>(o.dup_acks), o.completed);
}

int RunAll(bool audit_enabled) {
  PrintHeader("Ablation", "checkpoint coordination strategies (iperf, one checkpoint)");
  MultiRunAudit audit(audit_enabled);
  const Outcome scheduled = Run(Mode::kScheduled, &audit);
  const Outcome immediate = Run(Mode::kImmediate, &audit);
  const Outcome uncoordinated = Run(Mode::kUncoordinated, &audit);
  const Outcome baseline = Run(Mode::kBaselineTime, &audit);

  PrintSection("results");
  Print("scheduled", scheduled);
  Print("immediate", immediate);
  Print("uncoordinated", uncoordinated);
  Print("baseline-time", baseline);

  PrintSection("reading");
  PrintNote("scheduled: skew bounded by NTP error; smallest boundary gap.");
  PrintNote("immediate: skew grows to notification propagation + processing jitter.");
  PrintNote("uncoordinated: the boundary gap inflates to the stagger (packet delays");
  PrintNote("  and in-flight buildup of Section 3.2).");
  PrintNote("baseline-time: downtime leaks into guest clocks; RTO state is no longer");
  PrintNote("  aligned with the stream, risking spurious retransmissions.");

  return audit.Finish();
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "ablation_coordination");
  return bm.Finish(tcsim::RunAll(tcsim::HasFlag(argc, argv, "--audit")));
}
