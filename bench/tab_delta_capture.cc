// Delta-capture cost: serialized bytes and capture latency, full vs delta.
//
// The delta image format (format v2) lets a capture reference unchanged
// component chunks in its parent image instead of re-serializing them. This
// harness measures what that buys on the canonical "mostly cold state"
// profile: a guest that wrote a large burst of branch-store data early on
// (the cold chunk) and then settled into a timer-driven steady state. Full
// captures pay the cold chunk every checkpoint; delta captures pin it once
// and emit a 4-byte reference afterwards.
//
// Both modes run the identical deterministic scenario, checkpoint at the
// same instants, and every image is restored into a fresh node — the state
// digests must match pairwise across modes (delta restores go through
// ImageStore::Materialize, exercising the parent chain).
//
//   $ ./build/bench/tab_delta_capture [--json]
//
// Exit code is non-zero when a restore digest mismatches or the steady-state
// bytes-per-checkpoint reduction falls below 5x.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/checkpoint/local_checkpoint.h"
#include "src/guest/node.h"
#include "src/sim/simulator.h"

using namespace tcsim;

namespace {

constexpr uint64_t kColdOps = 96;          // burst write operations
constexpr uint64_t kBlocksPerOp = 64;      // blocks per burst write
constexpr int kCaptures = 8;               // checkpoints in the steady phase
constexpr SimTime kCaptureSpacing = 500 * kMillisecond;

double WallSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

NodeConfig BenchNodeConfig() {
  NodeConfig cfg;
  cfg.name = "delta-bench";
  cfg.id = 1;
  cfg.domain.memory_bytes = 128ull * 1024 * 1024;
  return cfg;
}

CheckpointPolicy BenchPolicy(bool delta) {
  CheckpointPolicy policy;
  policy.resume_timer_latency = 0;  // digests must be reproducible
  policy.delta_images = delta;
  policy.retain_image_chain = true;  // keep the chain materializable by id
  return policy;
}

// Observable state of a node after a restore; captures from the two modes
// land at identical instants of the identical workload, so restored digests
// must match pairwise.
uint64_t NodeDigest(const Simulator& sim, ExperimentNode& node) {
  uint64_t h = 0xCBF29CE484222325ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<uint64_t>(sim.Now()));
  mix(static_cast<uint64_t>(node.domain().VirtualNow()));
  mix(static_cast<uint64_t>(node.kernel().GetTimeOfDay()));
  mix(node.store().current_delta_blocks());
  mix(node.store().aggregated_delta_blocks());
  return h;
}

struct Capture {
  uint64_t image_id = 0;
  uint64_t bytes = 0;
  size_t payload_chunks = 0;
  size_t delta_chunks = 0;
  size_t version_skips = 0;
  size_t crc_fallbacks = 0;  // delta proven by CRC compare, not version skip
  double wall_s = 0;
  std::vector<uint8_t> image;  // self-contained (materialized) bytes
};

struct ModeResult {
  std::vector<Capture> captures;
  uint64_t delta_refs_stored = 0;  // across the retained chain
};

// Restores `image` into a fresh node and returns its state digest, or 0 on
// restore failure (0 never collides with a real digest in practice — the
// mixer never returns the FNV basis untouched).
uint64_t RestoreDigest(const std::vector<uint8_t>& image) {
  Simulator sim;
  ExperimentNode node(&sim, Rng(7), BenchNodeConfig());
  LocalCheckpointEngine engine(&sim, &node, BenchPolicy(false));
  if (!engine.RestoreImage(image)) {
    return 0;
  }
  engine.ResumeRestored();
  return NodeDigest(sim, node);
}

ModeResult RunMode(bool delta) {
  Simulator sim;
  ExperimentNode node(&sim, Rng(7), BenchNodeConfig());
  LocalCheckpointEngine engine(&sim, &node, BenchPolicy(delta));

  // Phase 1: the cold chunk — a burst of branch-store writes, chained on
  // completion so the block frontend is drained before any capture.
  uint64_t ops_done = 0;
  std::function<void()> issue = [&] {
    if (ops_done == kColdOps) {
      return;
    }
    std::vector<uint64_t> contents(kBlocksPerOp, 0xC01Dull + ops_done);
    node.kernel().block().Write(4096 + ops_done * kBlocksPerOp, contents, [&] {
      ++ops_done;
      issue();
    });
  };
  sim.Schedule(10 * kMillisecond, [&] { issue(); });

  // Phase 2: steady state — a timer loop with no further disk writes; the
  // branch-store chunk stops changing and becomes delta-referencable.
  std::function<void()> tick = [&] {
    node.kernel().Usleep(5 * kMillisecond, [&] { tick(); });
  };
  sim.Schedule(20 * kMillisecond, [&] { tick(); });

  sim.RunUntil(2 * kSecond);

  ModeResult result;
  for (int k = 0; k < kCaptures; ++k) {
    Capture cap;
    bool done = false;
    cap.wall_s = WallSeconds([&] {
      engine.CheckpointNow([&](const LocalCheckpointRecord&) { done = true; });
      while (!done) {
        sim.RunUntil(sim.Now() + kMillisecond);
      }
    });
    const CaptureStats& stats = engine.last_capture_stats();
    cap.image_id = stats.image_id;
    cap.bytes = stats.serialized_bytes;
    cap.payload_chunks = stats.payload_chunks;
    cap.delta_chunks = stats.delta_chunks;
    cap.version_skips = stats.version_skips;
    cap.crc_fallbacks = stats.crc_fallbacks;
    // The restore source: delta captures are materialized through the store
    // (walking the parent chain); full captures come back verbatim.
    cap.image = engine.image_store().Materialize(cap.image_id);
    result.captures.push_back(std::move(cap));
    sim.RunUntil(sim.Now() + kCaptureSpacing);
  }
  for (const Capture& cap : result.captures) {
    result.delta_refs_stored += engine.image_store().DeltaRefCount(cap.image_id);
  }
  return result;
}

double MeanBytes(const ModeResult& r, size_t from) {
  double total = 0;
  for (size_t i = from; i < r.captures.size(); ++i) {
    total += static_cast<double>(r.captures[i].bytes);
  }
  return total / static_cast<double>(r.captures.size() - from);
}

double MeanWallMs(const ModeResult& r, size_t from) {
  double total = 0;
  for (size_t i = from; i < r.captures.size(); ++i) {
    total += r.captures[i].wall_s;
  }
  return 1e3 * total / static_cast<double>(r.captures.size() - from);
}

}  // namespace

int main(int argc, char** argv) {
  BenchMain bm(argc, argv, "tab_delta_capture");

  ModeResult full = RunMode(/*delta=*/false);
  ModeResult delta = RunMode(/*delta=*/true);

  // Pairwise restore check: checkpoint k of either mode must restore to the
  // same observable state.
  bool restores_match = full.captures.size() == delta.captures.size();
  for (size_t k = 0; restores_match && k < full.captures.size(); ++k) {
    const uint64_t df = RestoreDigest(full.captures[k].image);
    const uint64_t dd = RestoreDigest(delta.captures[k].image);
    restores_match = df != 0 && df == dd;
  }

  // Steady state starts at the second capture: capture 0 has no parent in
  // delta mode (self-contained by construction) and would dilute the ratio.
  const double full_bytes = MeanBytes(full, 1);
  const double delta_bytes = MeanBytes(delta, 1);
  const double ratio = delta_bytes > 0 ? full_bytes / delta_bytes : 0;

  PrintHeader("tab_delta_capture",
              "delta vs full checkpoint images (cold burst + steady timers)");

  PrintSection("serialized bytes per checkpoint (steady state)");
  PrintValue("full capture", full_bytes, "B");
  PrintValue("delta capture", delta_bytes, "B");
  PrintValue("reduction", ratio, "x");
  PrintValue("first delta capture (self-contained)",
             static_cast<double>(delta.captures.front().bytes), "B");

  PrintSection("capture latency (host wall clock, steady state)");
  PrintValue("full capture", MeanWallMs(full, 1), "ms");
  PrintValue("delta capture", MeanWallMs(delta, 1), "ms");

  PrintSection("delta emission (last capture)");
  PrintValue("payload chunks",
             static_cast<double>(delta.captures.back().payload_chunks), "");
  PrintValue("delta-ref chunks",
             static_cast<double>(delta.captures.back().delta_chunks), "");
  PrintValue("version-counter skips (no SaveState run)",
             static_cast<double>(delta.captures.back().version_skips), "");
  PrintValue("CRC-compare fallbacks (SaveState re-run, bytes unchanged)",
             static_cast<double>(delta.captures.back().crc_fallbacks), "");
  PrintValue("delta refs across retained chain",
             static_cast<double>(delta.delta_refs_stored), "");

  // With every registered component carrying a real version counter, no
  // steady-state delta should need the CRC-compare fallback: an unchanged
  // chunk is proven unchanged by its counter alone. A nonzero count here
  // means some component lost (or never gained) its counter and is paying a
  // full re-serialization per capture just to discover nothing changed.
  size_t steady_fallbacks = 0;
  for (size_t k = 1; k < delta.captures.size(); ++k) {
    steady_fallbacks += delta.captures[k].crc_fallbacks;
  }
  const bool fallbacks_zero = steady_fallbacks == 0;
  PrintValue("steady-state CRC fallbacks (must be 0)",
             static_cast<double>(steady_fallbacks), "");

  PrintNote(restores_match
                ? "all restores digest-equal across full and delta paths"
                : "RESTORE DIGEST MISMATCH between full and delta paths");

  {
    std::string rows = "[\n";
    for (size_t k = 0; k < delta.captures.size(); ++k) {
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "    {\"capture\": %zu, \"full_bytes\": %llu, "
                    "\"delta_bytes\": %llu, \"delta_chunks\": %zu, "
                    "\"version_skips\": %zu, \"crc_fallbacks\": %zu}%s\n",
                    k, static_cast<unsigned long long>(full.captures[k].bytes),
                    static_cast<unsigned long long>(delta.captures[k].bytes),
                    delta.captures[k].delta_chunks,
                    delta.captures[k].version_skips,
                    delta.captures[k].crc_fallbacks,
                    k + 1 < delta.captures.size() ? "," : "");
      rows += buf;
    }
    rows += "  ]";
    BenchReport::Instance().AddExtra("captures", rows);
    BenchReport::Instance().AddExtra("restores_match",
                                     restores_match ? "true" : "false");
    BenchReport::Instance().AddExtra("steady_fallbacks_zero",
                                     fallbacks_zero ? "true" : "false");
  }

  const bool ok = restores_match && ratio >= 5.0 && fallbacks_zero;
  if (!ok && !JsonQuiet()) {
    std::printf("\nFAIL: %s\n",
                !restores_match      ? "restore digests mismatch"
                : !fallbacks_zero    ? "steady-state CRC fallbacks nonzero"
                                     : "bytes reduction below 5x");
  }
  return bm.Finish(ok ? 0 : 1);
}
