// Figure 6: iperf over a 1 Gbps link with a distributed checkpoint every 5 s.
//
// Paper setup: two nodes, TCP stream in one direction, packet trace captured
// on the receiving node, checkpoints every 5 seconds.
// Paper results: throughput holds its center line with slight dips after
// each checkpoint; the four checkpoint boundaries show inter-packet arrival
// delays of 5801 / 816 / 399 / 330 us (shrinking as NTP converges) against
// an 18 us average; the trace shows NO retransmissions, NO duplicate ACKs
// and NO window-size changes.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/iperf.h"
#include "src/emulab/experiment.h"
#include "src/emulab/experiment_spec.h"
#include "src/emulab/testbed.h"
#include "src/sim/simulator.h"

namespace tcsim {
namespace {

int Run(bool audit) {
  PrintHeader("Figure 6", "iperf on a 1 Gbps link, checkpoint every 5 s");

  Simulator sim;
  TestbedConfig cfg;
  // Machines boot with CMOS clocks up to +/-4 ms wrong; NTP converges over
  // the first few polls, so early checkpoints see larger skew — the source
  // of the paper's shrinking 5801 -> 330 us gap sequence.
  cfg.node_clock.initial_offset_jitter = 4 * kMillisecond;
  cfg.node_clock.ntp_poll_interval = 10 * kSecond;
  cfg.node_clock.ntp_gain = 0.6;
  Testbed testbed(&sim, 42, cfg);

  ExperimentSpec spec("iperf-pair");
  spec.AddNode("client");
  spec.AddNode("server");
  spec.AddLink("client", "server", 1'000'000'000, 50 * kMicrosecond);
  Experiment* experiment = testbed.CreateExperiment(spec);
  bool in = false;
  experiment->SwapIn(true, [&] { in = true; });
  sim.RunUntil(sim.Now() + 10 * kSecond);

  std::unique_ptr<InvariantRegistry> reg;
  if (audit) {
    reg = std::make_unique<InvariantRegistry>(&sim);
    experiment->RegisterInvariants(reg.get());
    reg->StartPeriodic(50 * kMillisecond);
  }

  IperfApp::Params params;
  params.total_bytes = 2ull * 1024 * 1024 * 1024;  // ~25 s at ~85 MB/s goodput
  IperfApp iperf(experiment->node("client"), experiment->node("server"), params);
  bool done = false;
  iperf.Start([&] { done = true; });

  // Checkpoints every 5 s, as long as the stream runs.
  size_t checkpoints = 0;
  std::function<void()> periodic = [&] {
    if (done || checkpoints >= 4) {
      return;
    }
    experiment->coordinator().CheckpointScheduled(
        500 * kMillisecond, [&](const DistributedCheckpointRecord&) {
          ++checkpoints;
          sim.Schedule(4500 * kMillisecond, periodic);
        });
  };
  sim.Schedule(3 * kSecond, periodic);  // first suspend ~13.5 s, mid-stream

  while (!done && sim.Now() < 600 * kSecond) {
    sim.RunUntil(sim.Now() + kSecond);
  }

  const Samples gaps = iperf.InterPacketGapsUs();
  PrintSection("inter-packet arrival times at the receiver");
  PrintRow("average inter-packet arrival", 18.0, gaps.Summarize().mean, "us");

  // The largest N gaps are the checkpoint-boundary gaps; print them in
  // arrival order against the paper's sequence.
  std::vector<std::pair<size_t, double>> indexed;
  for (size_t i = 0; i < gaps.values().size(); ++i) {
    indexed.emplace_back(i, gaps.values()[i]);
  }
  std::sort(indexed.begin(), indexed.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::pair<size_t, double>> top(indexed.begin(),
                                             indexed.begin() +
                                                 std::min<size_t>(checkpoints,
                                                                  indexed.size()));
  std::sort(top.begin(), top.end());
  const double paper_gaps[] = {5801, 816, 399, 330};
  for (size_t i = 0; i < top.size(); ++i) {
    PrintRow("checkpoint " + std::to_string(i + 1) + " boundary gap",
             i < 4 ? paper_gaps[i] : 0.0, top[i].second, "us");
  }
  PrintNote("gaps shrink as NTP converges: checkpoint skew bounds the anomaly");

  PrintSection("TCP health across checkpoints (paper: all zero)");
  PrintRow("retransmissions", 0, static_cast<double>(iperf.sender_stats().retransmits), "");
  PrintRow("timeouts", 0, static_cast<double>(iperf.sender_stats().timeouts), "");
  PrintRow("duplicate ACKs", 0, static_cast<double>(iperf.sender_stats().dup_acks_received),
           "");
  PrintRow("window-size changes", 0,
           static_cast<double>(iperf.sender_stats().window_changes), "");

  PrintSection("throughput");
  const TimeSeries series = iperf.ThroughputSeries();
  double peak = 0;
  for (const auto& p : series.points()) {
    peak = std::max(peak, p.value);
  }
  PrintValue("peak 20 ms-bucket throughput", peak, "MB/s");
  PrintValue("delivered", static_cast<double>(iperf.bytes_delivered()) / (1 << 20), "MiB");
  PrintSeries("fig6.throughput_MBps_20ms_buckets", series, 50);

  PrintDigest(sim);
  return FinishAudit(reg.get());
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "fig6_iperf");
  return bm.Finish(tcsim::Run(tcsim::HasFlag(argc, argv, "--audit")));
}
