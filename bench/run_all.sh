#!/bin/sh
# Consolidated bench run: every fig*/tab*/ablation* binary with --json, plus
# the google-benchmark micro suite, merged into one JSON document.
#
#   bench/run_all.sh [build_dir] [out_file]
#
# Defaults: build/ and $BENCH_OUT; when neither is given, the output name is
# derived from the newest committed baseline — BENCH_PR<N+1>.json where
# BENCH_PR<N>.json is the highest-numbered baseline in the repository root —
# so a fresh PR's run never clobbers the baseline it will be diffed against.
# The bench list can be overridden with $BENCH_LIST (space-separated binary
# names). Plain POSIX shell, no jq/python — each bench emits exactly one JSON
# object and this script concatenates them. bench/check_trajectory.py
# structurally diffs the output against the committed baseline.
set -u

BUILD="${1:-build}"
next_out() {
  n=0
  for f in BENCH_PR*.json; do
    [ -e "$f" ] || continue
    m="${f#BENCH_PR}"
    m="${m%.json}"
    case "$m" in ''|*[!0-9]*) continue ;; esac
    [ "$m" -gt "$n" ] && n="$m"
  done
  echo "BENCH_PR$((n + 1)).json"
}
OUT="${2:-${BENCH_OUT:-$(next_out)}}"
BENCHES="${BENCH_LIST:-fig4_sleep_loop fig5_cpu_loop fig6_iperf \
fig7_bittorrent fig8_cow_storage fig9_background_transfer tab_clock_sync \
tab_free_block_elim tab_stateful_swap tab_restore_path tab_delta_capture \
tab_repo_persist tab_parallel_kernel tab_frozen_window tab_failover \
ablation_coordination ablation_storage}"

rc=0
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

{
  printf '{\n  "benches": [\n'
  first=1
  for b in $BENCHES; do
    bin="$BUILD/bench/$b"
    if [ ! -x "$bin" ]; then
      echo "run_all.sh: missing $bin (build first)" >&2
      rc=1
      continue
    fi
    args="--json"
    # The swap bench persists node state through the durable repository when
    # asked; the consolidated run always exercises that mode.
    [ "$b" = "tab_stateful_swap" ] && args="--json --repo"
    if ! "$bin" $args >"$tmp"; then
      echo "run_all.sh: $b exited non-zero" >&2
      rc=1
    fi
    [ $first -eq 1 ] || printf ',\n'
    first=0
    sed 's/^/    /' "$tmp"
  done
  printf '  ],\n'
  if [ -x "$BUILD/bench/micro_benchmarks" ]; then
    printf '  "micro_benchmarks":\n'
    "$BUILD/bench/micro_benchmarks" --benchmark_format=json \
      --benchmark_min_time=0.05 2>/dev/null | sed 's/^/    /'
  else
    printf '  "micro_benchmarks": null\n'
  fi
  printf '}\n'
} >"$OUT"

echo "wrote $OUT"
exit $rc
