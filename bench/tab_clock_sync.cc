// Section 4.3 / 7.1 (text result): clock synchronization quality.
//
// The transparency of the distributed checkpoint is bounded by clock
// synchronization error. Paper: NTP over the dedicated control LAN achieves
// ~200 us error under good conditions, which in turn bounds checkpoint skew
// and the inter-packet anomalies of Figure 6.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/clock/hardware_clock.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace tcsim {
namespace {

int Run(bool audit) {
  PrintHeader("Section 4.3", "NTP clock synchronization over the control LAN");

  Simulator sim;
  Rng rng(12);
  ClockParams params;
  params.initial_offset_jitter = 10 * kMillisecond;  // CMOS clocks at boot
  params.drift_ppm = 25.0;

  constexpr size_t kNodes = 10;
  std::vector<std::unique_ptr<HardwareClock>> clocks;
  std::unique_ptr<InvariantRegistry> reg;
  if (audit) {
    reg = std::make_unique<InvariantRegistry>(&sim);
  }
  for (size_t i = 0; i < kNodes; ++i) {
    clocks.push_back(std::make_unique<HardwareClock>(&sim, rng.Fork(), params));
    clocks.back()->StartNtp();
    if (reg) {
      clocks.back()->RegisterInvariants(reg.get(),
                                        "clock.monotonic.n" + std::to_string(i));
    }
  }
  if (reg) {
    reg->StartPeriodic(100 * kMillisecond);
  }

  // Convergence: sample the worst absolute error every second.
  TimeSeries worst_error_us;
  Samples steady_errors_us;
  Samples steady_skews_us;
  for (int t = 1; t <= 300; ++t) {
    sim.RunUntil(static_cast<SimTime>(t) * kSecond);
    double worst = 0;
    SimTime lo = clocks[0]->LocalNow();
    SimTime hi = lo;
    for (auto& clock : clocks) {
      worst = std::max(worst, std::abs(ToMicroseconds(clock->CurrentError())));
      lo = std::min(lo, clock->LocalNow());
      hi = std::max(hi, clock->LocalNow());
    }
    worst_error_us.Add(sim.Now(), worst);
    if (t > 120) {  // steady state
      steady_errors_us.Add(worst);
      steady_skews_us.Add(ToMicroseconds(hi - lo));
    }
  }

  PrintSection("steady state (after convergence)");
  PrintRow("worst per-node clock error", 200.0, steady_errors_us.Summarize().max, "us");
  PrintValue("mean worst-of-10 clock error", steady_errors_us.Summarize().mean, "us");
  PrintValue("max pairwise skew across 10 nodes", steady_skews_us.Summarize().max, "us");
  PrintNote("checkpoint suspension skew (Figure 6 gaps) is bounded by this error.");

  PrintSeries("clock.worst_error_us", worst_error_us, 30);

  PrintDigest(sim);
  return FinishAudit(reg.get());
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "tab_clock_sync");
  return bm.Finish(tcsim::Run(tcsim::HasFlag(argc, argv, "--audit")));
}
