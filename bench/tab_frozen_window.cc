// Frozen-window cost of checkpoint epochs: synchronous vs two-phase capture.
//
// At every epoch barrier the whole system is quiesced. A synchronous epoch
// pays serialize + CRC + delta decision + the repository group commit inside
// that window; a two-phase (async) epoch only clones component state into
// pinned staging buffers and resumes the partitions while a background thread
// does the rest. This bench measures the wall-clock frozen window per epoch
// for both modes over the same generated fat tree, at 100 and 1000 hosts,
// with a durable repository attached.
//
//   frozen(sync)  = capture wall + spill wall      (all inside the barrier)
//   frozen(async) = freeze phase + commit_wait     (barrier time only)
//
// The bench FAILS (non-zero exit) unless (a) the async run's captures digest
// and event digest are bit-identical to the synchronous run's at every scale
// — the two-phase path must be invisible except in timing — and (b) the
// frozen-window reduction at the largest scale is >= 3x.
//
//   $ ./build/bench/tab_frozen_window [--json] [--sim-ms=T] [--epoch-ms=E]
//        [--partitions=P] [--workers=W]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/ledger_util.h"
#include "src/checkpoint/epoch_coordinator.h"
#include "src/net/topology.h"
#include "src/repo/checkpoint_repo.h"
#include "src/sim/scheduler.h"
#include "src/sim/staging.h"
#include "src/sim/time.h"

using namespace tcsim;

namespace {

struct ModeResult {
  size_t epochs = 0;
  uint64_t captures_digest = 0;
  uint64_t event_digest = 0;
  uint64_t epoch_image_bytes = 0;  // mean per epoch (all partitions)
  double frozen_ms = 0;            // mean barrier occupancy per epoch
  double background_ms = 0;        // mean overlapped work per epoch (async)
  double commit_wait_ms = 0;       // mean stall on the previous commit (async)
  bool spill_ok = true;
  bool open_ok = true;
  LedgerAttribution ledger;
};

ModeResult RunMode(GeneratedTopologyParams params, uint32_t partitions,
                   uint32_t workers, bool async, SimTime horizon,
                   SimTime epoch_period) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("tcsim_bench_frozen_" + std::to_string(params.hosts) +
       (async ? "_async" : "_sync"));
  std::error_code ec;
  fs::remove_all(dir, ec);
  std::string err;
  ModeResult r;
  std::unique_ptr<CheckpointRepo> repo =
      CheckpointRepo::Open(dir.string(), RepoOptions{}, &err);
  if (repo == nullptr) {
    r.open_ok = false;
    r.spill_ok = false;
    return r;
  }

  auto topo = GeneratedTopology::Build(params, partitions, workers);
  PartitionEpochCoordinator epochs(
      topo->scheduler(), epoch_period,
      [&topo](Partition* p) { return topo->CapturePartitionImage(p->id()); });
  if (async) {
    epochs.EnableAsyncCapture([&topo](Partition* p, StagedCapture* out) {
      topo->SnapshotPartition(p->id(), out);
    });
  }
  epochs.AttachRepository(repo.get());
  obs::EpochLedger::Global().Enable();
  epochs.RunUntil(horizon);
  r.ledger = AnalyzeLedgerRun();

  r.epochs = epochs.history().size();
  for (const auto& rec : epochs.history()) {
    r.epoch_image_bytes += rec.image_bytes;
    // Barrier occupancy: everything the workload waits on while quiesced.
    r.frozen_ms += async ? rec.frozen_wall_ms + rec.commit_wait_ms
                         : rec.wall_ms + rec.spill_wall_ms;
    r.background_ms += rec.background_wall_ms;
    r.commit_wait_ms += rec.commit_wait_ms;
    r.spill_ok = r.spill_ok && rec.spill_ok;
  }
  if (r.epochs > 0) {
    r.epoch_image_bytes /= r.epochs;
    r.frozen_ms /= static_cast<double>(r.epochs);
    r.background_ms /= static_cast<double>(r.epochs);
    r.commit_wait_ms /= static_cast<double>(r.epochs);
  }
  r.captures_digest = epochs.CapturesDigest();
  r.event_digest = topo->EventDigest();

  repo.reset();
  fs::remove_all(dir, ec);
  return r;
}

uint64_t FlagU64(int argc, char** argv, const char* flag, uint64_t fallback) {
  const char* v = FlagValue(argc, argv, flag);
  return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10)
                                      : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  BenchMain bm(argc, argv, "tab_frozen_window");

  const uint32_t partitions =
      static_cast<uint32_t>(FlagU64(argc, argv, "--partitions", 4));
  const uint32_t workers =
      static_cast<uint32_t>(FlagU64(argc, argv, "--workers", 3));
  const SimTime horizon =
      static_cast<SimTime>(FlagU64(argc, argv, "--sim-ms", 200)) * kMillisecond;
  const SimTime epoch_period =
      static_cast<SimTime>(FlagU64(argc, argv, "--epoch-ms", 50)) * kMillisecond;

  PrintHeader("tab_frozen_window",
              "frozen window per checkpoint epoch: synchronous vs two-phase "
              "capture, repository attached");

  const uint32_t host_sweep[] = {100, 1000};
  bool digests_ok = true;
  bool spills_ok = true;
  bool coverage_ok = true;
  double min_coverage = 1.0;
  double final_reduction = 0;
  std::string rows = "[\n";
  for (size_t i = 0; i < 2; ++i) {
    GeneratedTopologyParams params;
    params.hosts = host_sweep[i];
    const ModeResult sync =
        RunMode(params, partitions, workers, /*async=*/false, horizon,
                epoch_period);
    const ModeResult async =
        RunMode(params, partitions, workers, /*async=*/true, horizon,
                epoch_period);

    const bool digest_ok = sync.captures_digest == async.captures_digest &&
                           sync.event_digest == async.event_digest &&
                           sync.epochs == async.epochs &&
                           sync.epoch_image_bytes == async.epoch_image_bytes;
    const bool spill_ok = sync.open_ok && async.open_ok && sync.spill_ok &&
                          async.spill_ok;
    digests_ok = digests_ok && digest_ok;
    spills_ok = spills_ok && spill_ok;
    const double reduction =
        async.frozen_ms > 0 ? sync.frozen_ms / async.frozen_ms : 0;
    final_reduction = reduction;  // last sweep entry is the largest scale

    char section[64];
    std::snprintf(section, sizeof section, "%u hosts, %u partitions",
                  host_sweep[i], partitions);
    PrintSection(section);
    PrintValue("checkpoint epochs", static_cast<double>(sync.epochs), "");
    PrintValue("epoch image bytes",
               static_cast<double>(sync.epoch_image_bytes), "B");
    PrintValue("frozen window, sync (capture+spill)", sync.frozen_ms, "ms");
    PrintValue("frozen window, async (freeze+wait)", async.frozen_ms, "ms");
    PrintValue("async background (overlapped)", async.background_ms, "ms");
    PrintValue("async commit wait", async.commit_wait_ms, "ms");
    PrintValue("frozen-window reduction", reduction, "x");
    PrintValue("ledger coverage (async, min epoch)", async.ledger.min_coverage,
               "");
    PrintValue("straggler partition",
               static_cast<double>(async.ledger.straggler_partition), "");
    PrintValue("straggler slack (mean)", async.ledger.straggler_slack_ms,
               "ms");
    // The attribution itself must account for the run: every epoch's wall
    // time >= 95% explained by stamped serial phases, in both modes.
    const bool cover_ok = sync.ledger.ok && async.ledger.ok &&
                          sync.ledger.min_coverage >= 0.95 &&
                          async.ledger.min_coverage >= 0.95;
    coverage_ok = coverage_ok && cover_ok;
    min_coverage =
        std::min({min_coverage, sync.ledger.min_coverage,
                  async.ledger.min_coverage});
    PrintNote(digest_ok
                  ? "async captures digest bit-identical to synchronous"
                  : "DIGEST MISMATCH: async diverged from synchronous");
    if (!spill_ok) {
      PrintNote("EPOCH SPILL FAILED");
    }
    BenchReport::Instance().RecordDigest(async.captures_digest);

    char buf[768];
    std::snprintf(
        buf, sizeof buf,
        "    {\"hosts\": %u, \"epochs\": %zu, \"epoch_image_bytes\": %llu, "
        "\"sync_frozen_ms\": %.3f, \"async_frozen_ms\": %.3f, "
        "\"background_ms\": %.3f, \"commit_wait_ms\": %.3f, "
        "\"reduction\": %.3f, \"digest_ok\": %s, \"spill_ok\": %s, "
        "\"ledger_coverage\": %.3f, \"straggler_partition\": %d, "
        "\"straggler_slack_ms\": %.3f, \"ledger_window_share\": %.3f, "
        "\"ledger_frozen_share\": %.3f, \"ledger_commit_wait_share\": %.3f}"
        "%s\n",
        host_sweep[i], sync.epochs,
        static_cast<unsigned long long>(sync.epoch_image_bytes),
        sync.frozen_ms, async.frozen_ms, async.background_ms,
        async.commit_wait_ms, reduction, digest_ok ? "true" : "false",
        spill_ok ? "true" : "false", async.ledger.min_coverage,
        async.ledger.straggler_partition, async.ledger.straggler_slack_ms,
        async.ledger.window_share, async.ledger.frozen_share,
        async.ledger.commit_wait_share, i == 0 ? "," : "");
    rows += buf;
  }
  rows += "  ]";
  BenchReport::Instance().AddExtra("frozen_window", rows);
  BenchReport::Instance().AddExtra("digest_oracle_ok",
                                   digests_ok ? "true" : "false");

  // Wall-clock gate: the tentpole claim is >= 3x at the largest scale. Timing
  // is machine-dependent, but the sync window includes full serialization,
  // hashing and the group commit while async stages raw clones, so 3x holds
  // with wide margin anywhere; the digest identity is the correctness claim.
  const bool reduction_ok = final_reduction >= 3.0;
  char red[32];
  std::snprintf(red, sizeof red, "%.3f", final_reduction);
  BenchReport::Instance().AddExtra("frozen_reduction_1k", red);
  BenchReport::Instance().AddExtra("frozen_reduction_ok",
                                   reduction_ok ? "true" : "false");
  char cover[32];
  std::snprintf(cover, sizeof cover, "%.3f", min_coverage);
  BenchReport::Instance().AddExtra("ledger_min_coverage", cover);
  BenchReport::Instance().AddExtra("ledger_coverage_ok",
                                   coverage_ok ? "true" : "false");

  const bool ok = digests_ok && spills_ok && reduction_ok && coverage_ok;
  if (!ok && !JsonQuiet()) {
    std::printf("\nFAIL: %s\n",
                !digests_ok ? "two-phase capture diverged from synchronous"
                : !spills_ok ? "repository spill failed"
                : !reduction_ok
                    ? "frozen-window reduction below 3x at 1k hosts"
                    : "ledger attribution below 95% of epoch wall time");
  }
  return bm.Finish(ok ? 0 : 1);
}
