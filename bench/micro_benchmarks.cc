// Micro-benchmarks of the simulator substrate (google-benchmark).
//
// These do not reproduce paper results; they bound the cost of the
// simulation machinery itself (events, RNG, TCP, the branching store, and a
// full local checkpoint cycle) so regressions in the substrate are visible.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>

#include "src/checkpoint/local_checkpoint.h"
#include "src/guest/node.h"
#include "src/net/stack.h"
#include "src/net/tcp.h"
#include "src/net/timer_host.h"
#include "src/net/wire.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/storage/branch_store.h"
#include "src/storage/disk.h"

namespace tcsim {

// Global allocation counter, fed by replacement operator new/delete below.
// The steady-state dispatch benchmark uses it to assert the event kernel's
// zero-per-event-heap-allocation property as a measured counter rather than
// a claim.
std::atomic<uint64_t> g_allocations{0};

}  // namespace tcsim

void* operator new(std::size_t size) {
  tcsim::g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace tcsim {
namespace {

void BM_EventScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(i, [] {});
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventScheduleAndRun);

// Steady-state dispatch: a self-rescheduling timer wheel exercised after the
// slab has warmed up. Counts heap allocations per dispatched event — the
// slab/free-list event kernel plus inline EventFn storage makes this 0.
void BM_EventSteadyStateDispatch(benchmark::State& state) {
  Simulator sim;
  constexpr int kTimers = 64;
  uint64_t fired = 0;
  std::function<void(int)> arm = [&](int i) {
    sim.Schedule(1 + (i % 7), [&arm, &fired, i] {
      ++fired;
      arm(i);
    });
  };
  for (int i = 0; i < kTimers; ++i) {
    arm(i);
  }
  sim.RunUntil(sim.Now() + 1000);  // warm up the slab and the heap vector
  const uint64_t fired_before = fired;
  const uint64_t allocs_before = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    sim.RunUntil(sim.Now() + 100);
  }
  const uint64_t events = fired - fired_before;
  const uint64_t allocs = g_allocations.load(std::memory_order_relaxed) - allocs_before;
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["allocs_per_event"] = benchmark::Counter(
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events) : 0);
}
BENCHMARK(BM_EventSteadyStateDispatch);

void BM_RngNormal(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Normal(0.0, 1.0));
  }
}
BENCHMARK(BM_RngNormal);

void BM_TcpBulkTransfer(benchmark::State& state) {
  const uint64_t bytes = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    PhysicalTimerHost timers(&sim);
    NetworkStack a(&sim, &timers, 1);
    NetworkStack b(&sim, &timers, 2);
    Nic* nic_a = a.AddNic();
    Nic* nic_b = b.AddNic();
    Rng rng(7);
    Wire ab(&sim, rng.Fork(), 1'000'000'000, 100 * kMicrosecond, 0.0, nic_b);
    Wire ba(&sim, rng.Fork(), 1'000'000'000, 100 * kMicrosecond, 0.0, nic_a);
    nic_a->ConnectTx(&ab);
    nic_b->ConnectTx(&ba);
    uint64_t delivered = 0;
    b.ListenTcp(80, [&](TcpConnection* conn) {
      conn->SetDeliveryCallback([&](uint64_t n) { delivered += n; });
    });
    TcpConnection* conn = a.ConnectTcp(2, 80, {}, nullptr);
    conn->Send(bytes);
    sim.Run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_TcpBulkTransfer)->Arg(1 << 20)->Arg(8 << 20);

// Cumulative-ACK retirement on a fat pipe: 1 Gbps at 20 ms one way keeps
// thousands of segments in flight, so each ACK retires a batch from the front
// of the sender's in-flight queue. With the old std::vector front-erase this
// was O(window) of memmove per retired segment and the whole transfer went
// quadratic in the window; the deque keeps it O(1). The tripwire asserts the
// amortized host cost per retired segment stays far below the vector
// regime (which measured in the tens of microseconds per segment here).
void BM_TcpCumulativeAckLargeWindow(benchmark::State& state) {
  const uint64_t bytes = static_cast<uint64_t>(state.range(0));
  double worst_per_segment_us = 0;
  for (auto _ : state) {
    Simulator sim;
    PhysicalTimerHost timers(&sim);
    NetworkStack a(&sim, &timers, 1);
    NetworkStack b(&sim, &timers, 2);
    Nic* nic_a = a.AddNic();
    Nic* nic_b = b.AddNic();
    Rng rng(7);
    Wire ab(&sim, rng.Fork(), 1'000'000'000, 20 * kMillisecond, 0.0, nic_b);
    Wire ba(&sim, rng.Fork(), 1'000'000'000, 20 * kMillisecond, 0.0, nic_a);
    nic_a->ConnectTx(&ab);
    nic_b->ConnectTx(&ba);
    TcpConnection::Params params;
    params.recv_buffer_bytes = 16 * 1024 * 1024;  // window >> BDP
    uint64_t delivered = 0;
    b.ListenTcp(80, [&](TcpConnection* conn) {
      conn->SetDeliveryCallback([&](uint64_t n) { delivered += n; });
    }, params);
    TcpConnection* conn = a.ConnectTcp(2, 80, params, nullptr);
    conn->Send(bytes);
    const auto start = std::chrono::steady_clock::now();
    sim.Run();
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(delivered);
    const double segments =
        static_cast<double>(conn->stats().bytes_acked) / kTcpMss;
    const double us_per_segment =
        std::chrono::duration<double, std::micro>(stop - start).count() /
        (segments > 0 ? segments : 1);
    worst_per_segment_us = std::max(worst_per_segment_us, us_per_segment);
    if (delivered != bytes) {
      state.SkipWithError("transfer did not complete");
      return;
    }
  }
  state.counters["us_per_acked_segment"] = worst_per_segment_us;
  // Regression tripwire, generous enough for slow CI hosts: the deque path
  // measures well under 1 us/segment; the quadratic vector path blows past
  // this by an order of magnitude.
  if (worst_per_segment_us > 5.0) {
    state.SkipWithError("cumulative-ACK retirement cost regressed");
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_TcpCumulativeAckLargeWindow)->Arg(32 << 20)->Unit(benchmark::kMillisecond);

void BM_BranchStoreWrite(benchmark::State& state) {
  Simulator sim;
  Disk disk(&sim, DiskParams{});
  BranchStore store(&disk, 1 << 22);
  uint64_t block = 0;
  for (auto _ : state) {
    store.Write(block, {block}, nullptr);
    block = (block + 1) % (1 << 22);
    if (block % 1024 == 0) {
      sim.Run();  // drain the disk queue
    }
  }
  sim.Run();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchStoreWrite);

void BM_LocalCheckpointCycle(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    NodeConfig cfg;
    cfg.name = "pc1";
    cfg.id = 1;
    ExperimentNode node(&sim, Rng(1), cfg);
    LocalCheckpointEngine engine(&sim, &node, CheckpointPolicy{});
    node.domain().TouchMemory(64 << 20);
    bool done = false;
    sim.Schedule(kSecond, [&] {
      engine.CheckpointNow([&](const LocalCheckpointRecord&) { done = true; });
    });
    while (!done && sim.Now() < 60 * kSecond) {
      sim.RunUntil(sim.Now() + kSecond);
    }
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_LocalCheckpointCycle);

}  // namespace
}  // namespace tcsim

BENCHMARK_MAIN();
