// Figure 5 (+ Dom0 interference table): a CPU-intensive job in a loop under
// periodic checkpointing.
//
// Paper setup: a fixed CPU-bound job measuring 236.6 ms per iteration
// unperturbed (90% of iterations within 9 ms), checkpointed every 5 s.
// Paper results: CPU allocation stays within ~27 ms of nominal at
// checkpoints; residual checkpoint activity in Dom0 explains the
// perturbation — even `ls` (5-7 ms), `sum` of the kernel image (13-17 ms)
// and `xm list` (~130 ms) in Dom0 visibly stretch iterations.

#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/microbench.h"
#include "src/checkpoint/local_checkpoint.h"
#include "src/guest/node.h"
#include "src/sim/simulator.h"

namespace tcsim {
namespace {

Summary RunLoop(size_t iterations, bool checkpointing,
                const std::function<void(Simulator&, ExperimentNode&)>& mid_run_hook,
                Samples* out = nullptr, bool audit = false, int* audit_rc = nullptr,
                uint64_t* digest = nullptr) {
  Simulator sim;
  NodeConfig cfg;
  cfg.name = "pc1";
  cfg.id = 1;
  ExperimentNode node(&sim, Rng(3), cfg);
  LocalCheckpointEngine engine(&sim, &node, CheckpointPolicy{});

  std::unique_ptr<InvariantRegistry> reg;
  if (audit) {
    reg = std::make_unique<InvariantRegistry>(&sim);
    node.RegisterInvariants(reg.get());
    reg->StartPeriodic(50 * kMillisecond);
  }

  CpuLoopApp::Params params;
  params.iterations = iterations;
  CpuLoopApp app(&node, params);
  bool done = false;
  app.Start([&] { done = true; });

  std::function<void()> periodic = [&] {
    if (!engine.in_progress()) {
      engine.CheckpointNow(nullptr);
    }
    sim.Schedule(5 * kSecond, periodic);
  };
  if (checkpointing) {
    sim.Schedule(5 * kSecond, periodic);
  }
  if (mid_run_hook) {
    mid_run_hook(sim, node);
  }

  while (!done && sim.Now() < 1200 * kSecond) {
    sim.RunUntil(sim.Now() + kSecond);
  }
  if (out != nullptr) {
    *out = app.iteration_times_ms();
  }
  if (audit_rc != nullptr) {
    *audit_rc = FinishAudit(reg.get());
  }
  if (digest != nullptr) {
    *digest = sim.Digest();
  }
  return app.iteration_times_ms().Summarize();
}

// Measures how much a single Dom0 job stretches the loop's worst iteration.
double Dom0JobImpactMs(const char* name, double cpu_fraction, SimTime duration) {
  const Summary base = RunLoop(30, false, nullptr);
  const Summary with_job = RunLoop(
      30, false, [=](Simulator& sim, ExperimentNode& node) {
        sim.Schedule(3 * kSecond, [&node, name, cpu_fraction, duration] {
          node.hypervisor().RunDom0Job(name, cpu_fraction, duration);
        });
      });
  return with_job.max - base.mean;
}

int Run(bool audit) {
  PrintHeader("Figure 5", "CPU-intensive loop under periodic checkpointing");

  Samples iters;
  int audit_rc = 0;
  uint64_t digest = 0;
  const Summary base = RunLoop(100, false, nullptr);
  const Summary ckpt = RunLoop(600, true, nullptr, &iters, audit, &audit_rc, &digest);

  PrintSection("iteration time");
  PrintRow("nominal iteration (no checkpointing)", 236.6, base.mean, "ms");
  PrintRow("fraction within 9 ms of nominal", 0.90,
           iters.FractionWithin(base.mean, 9.0), "frac");
  PrintSection("checkpoint impact");
  PrintRow("max perturbation at checkpoints", 27.0, ckpt.max - base.mean, "ms");
  PrintNote("perturbation comes from Dom0 pre-copy/writeback CPU, not lost time");

  PrintSection("Dom0 interference experiment (Section 7.1)");
  // Modelled Dom0 jobs: (fraction of CPU, duration) chosen to represent the
  // cost of each command on the pc3000 nodes.
  PrintRow("ls /            impact", 6.0, Dom0JobImpactMs("ls", 0.45, 14 * kMillisecond),
           "ms");
  PrintRow("sum vmlinux     impact", 15.0, Dom0JobImpactMs("sum", 0.5, 30 * kMillisecond),
           "ms");
  PrintRow("xm list         impact", 130.0,
           Dom0JobImpactMs("xm-list", 0.6, 300 * kMillisecond), "ms");

  TimeSeries series;
  size_t i = 0;
  for (double v : iters.values()) {
    series.Add(static_cast<SimTime>(i++) * kSecond / 4, v);
  }
  PrintSeries("fig5.iteration_time_ms", series);

  BenchReport::Instance().RecordDigest(digest);
  if (!JsonQuiet()) {
    std::printf("\nevent digest: %016llx\n",
                static_cast<unsigned long long>(digest));
  }
  return audit_rc;
}

}  // namespace
}  // namespace tcsim

int main(int argc, char** argv) {
  tcsim::BenchMain bm(argc, argv, "fig5_cpu_loop");
  return bm.Finish(tcsim::Run(tcsim::HasFlag(argc, argv, "--audit")));
}
